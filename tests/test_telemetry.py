"""Tests for :mod:`repro.telemetry` and its instrumentation of every layer.

The two load-bearing guarantees:

* **zero interference** — canonical sweep reports, golden BO traces and
  on-disk store bytes are byte-identical with tracing off, on, and on with
  JSONL export, across every execution backend and worker count;
* **honest accounting** — worker-side spans and counters ship back with
  task results and merge under the submitting span; degraded runs (pool
  fallbacks) surface as counters instead of only a transient warning.
"""

from __future__ import annotations

import json
import warnings
from concurrent.futures import BrokenExecutor

import numpy as np
import pytest

from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation.sweep import DriftSweepEngine
from repro.execution import cells as cells_module
from repro.execution.cells import run_cells
from repro.fault.drift import LogNormalDrift
from repro.models import build_mlp
from repro.scenarios import FaultSpec, ResultStore, ScenarioRunner, ScenarioSpec
from repro.scenarios.cli import main as cli_main
from repro.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    ProgressReporter,
    Telemetry,
    Tracer,
    current,
    format_trace_summary,
    read_trace_jsonl,
    span_breakdown,
    summarize_trace,
    using,
    write_trace_jsonl,
)
from repro.telemetry.tracer import _NULL_SPAN, NULL_TRACER
from repro.utils.config import ExperimentConfig


# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_and_gauge_basics(self):
        registry = MetricsRegistry()
        registry.counter("evals").add()
        registry.counter("evals").add(4)
        registry.gauge("workers").set(3)
        assert registry.value("evals") == 5
        assert registry.value("workers") == 3
        assert registry.value("missing", default=-1) == -1
        assert len(registry) == 2

    def test_same_object_on_reuse(self):
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError, match="already a counter"):
            registry.gauge("n")
        registry.gauge("g")
        with pytest.raises(ValueError, match="already a gauge"):
            registry.counter("g")

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("n").add(7)
        registry.gauge("g").set(2)
        registry.reset()
        assert registry.value("n") == 0 and registry.value("g") == 0

    def test_merge_sums_counters_keeps_max_gauge(self):
        parent = MetricsRegistry()
        parent.counter("n").add(2)
        parent.gauge("workers").set(4)
        worker = MetricsRegistry()
        worker.counter("n").add(3)
        worker.counter("only_worker").add(1)
        worker.gauge("workers").set(2)
        parent.merge(worker.snapshot())
        assert parent.value("n") == 5
        assert parent.value("only_worker") == 1
        assert parent.value("workers") == 4  # max, not last-write
        assert parent.as_dict() == {"n": 5, "only_worker": 1, "workers": 4}


# --------------------------------------------------------------------------- #
class TestTracer:
    def test_nesting_mirrors_call_structure(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner"):
                assert tracer.current_span().name == "inner"
            with tracer.span("inner"):
                pass
        assert tracer.current_span() is None
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in outer.children] == ["inner", "inner"]
        exported = tracer.export()[0]
        assert exported["attrs"] == {"kind": "test"}
        assert exported["seconds"] >= sum(
            child["seconds"] for child in exported["children"])

    def test_set_attaches_mid_span_attrs(self):
        tracer = Tracer()
        with tracer.span("chunk", trials=8) as span:
            span.set(unique=5)
        assert span.attrs == {"trials": 8, "unique": 5}

    def test_exception_unwinding_pops_tolerantly(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current_span() is None

    def test_graft_rebases_and_tags_remote(self):
        worker = Tracer()
        with worker.span("task", trials=2):
            with worker.span("trial"):
                pass
        parent = Tracer()
        with parent.span("backend") as span:
            parent.graft(worker.export(), under=span)
        adopted = span.children[0]
        assert adopted["attrs"]["remote"] is True
        assert adopted["attrs"]["trials"] == 2
        # Rebase: worker offsets shift onto the submitting span's start.
        assert adopted["start"] >= span.start
        assert adopted["children"][0]["name"] == "trial"
        # Durations are never rewritten by the graft.
        assert adopted["seconds"] == worker.export()[0]["seconds"]

    def test_null_tracer_is_shared_and_inert(self):
        assert NULL_TRACER.span("anything", k=1) is _NULL_SPAN
        assert NULL_TRACER.span("other") is _NULL_SPAN
        with NULL_TRACER.span("x") as span:
            span.set(irrelevant=True)
        assert NULL_TRACER.export() == []
        assert NULL_TRACER.current_span() is None
        assert not NULL_TRACER.enabled


# --------------------------------------------------------------------------- #
class TestSession:
    def test_default_is_null(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled
        snap = NULL_TELEMETRY.snapshot()
        assert snap == {"spans": [], "metrics": {"counters": {}, "gauges": {}}}

    def test_using_pushes_and_pops(self):
        telemetry = Telemetry()
        with using(telemetry):
            assert current() is telemetry
            inner = Telemetry()
            with using(inner):
                assert current() is inner
            assert current() is telemetry
        assert current() is NULL_TELEMETRY

    def test_using_pops_on_exception(self):
        with pytest.raises(RuntimeError):
            with using(Telemetry()):
                raise RuntimeError("boom")
        assert current() is NULL_TELEMETRY

    def test_gauge_keeps_max(self):
        telemetry = Telemetry()
        telemetry.gauge("workers", 4)
        telemetry.gauge("workers", 2)
        assert telemetry.metrics.value("workers") == 4

    def test_absorb_none_is_noop(self):
        telemetry = Telemetry()
        telemetry.absorb(None)
        telemetry.absorb({})
        assert telemetry.snapshot()["spans"] == []

    def test_absorb_merges_worker_snapshot(self):
        worker = Telemetry()
        with worker.span("task"):
            worker.add("evaluations_total", 3)
        parent = Telemetry()
        with parent.span("backend") as span:
            parent.absorb(worker.snapshot(), under=span)
        snapshot = parent.snapshot()
        assert snapshot["metrics"]["counters"]["evaluations_total"] == 3
        grafted = snapshot["spans"][0]["children"][0]
        assert grafted["name"] == "task" and grafted["attrs"]["remote"]


# --------------------------------------------------------------------------- #
class TestExport:
    def _snapshot(self):
        telemetry = Telemetry()
        with telemetry.span("sweep", grid=2):
            with telemetry.span("sigma", sigma=0.0):
                with telemetry.span("chunk", trials=3):
                    pass
            with telemetry.span("sigma", sigma=0.4):
                pass
        telemetry.add("evaluations_total", 4)
        telemetry.add("cache_hits_total", 2)
        telemetry.add("pool_fallbacks")
        telemetry.gauge("workers", 2)
        return telemetry.snapshot()

    def test_jsonl_roundtrip(self, tmp_path):
        snapshot = self._snapshot()
        path = write_trace_jsonl(snapshot, tmp_path / "trace.jsonl")
        assert read_trace_jsonl(path) == snapshot
        rows = [json.loads(line)
                for line in path.read_text().strip().splitlines()]
        assert rows[0]["type"] == "span" and rows[0]["parent"] is None
        assert {row["type"] for row in rows} == {"span", "metrics"}

    def test_span_breakdown_aggregates_by_name(self):
        snapshot = self._snapshot()
        table = span_breakdown(snapshot["spans"][0])
        assert table["sigma"]["count"] == 2
        assert table["chunk"]["count"] == 1
        assert set(table) == {"sweep", "sigma", "chunk"}

    def test_summarize_counts_and_rates(self, tmp_path):
        snapshot = self._snapshot()
        summary = summarize_trace(snapshot)
        assert summary["span_count"] == 4
        assert summary["cache_hit_rate"] == pytest.approx(2 / 6)
        by_name = {row["name"]: row for row in summary["spans"]}
        assert by_name["sigma"]["count"] == 2
        # self time can never exceed cumulative time.
        for row in summary["spans"]:
            assert 0.0 <= row["self_seconds"] <= row["seconds"] + 1e-9
        # Path input produces the same report as the dict input.
        path = write_trace_jsonl(snapshot, tmp_path / "trace.jsonl")
        assert summarize_trace(path) == summary

    def test_format_surfaces_degraded_counters(self):
        text = format_trace_summary(summarize_trace(self._snapshot()))
        assert "DEGRADED" in text and "pool_fallbacks = 1" in text
        assert "cache hit rate" in text

    def test_summarize_worker_busy_from_remote_spans(self):
        worker = Telemetry()
        with worker.span("task"):
            pass
        parent = Telemetry()
        with parent.span("backend") as span:
            parent.absorb(worker.snapshot(), under=span)
        parent.gauge("workers", 2)
        summary = summarize_trace(parent.snapshot())
        task_seconds = [row["seconds"] for row in summary["spans"]
                        if row["name"] == "task"][0]
        assert summary["worker_busy_seconds"] == pytest.approx(task_seconds)


# --------------------------------------------------------------------------- #
class TestProgressReporter:
    def test_counts_percentage_and_eta(self):
        lines = []
        reporter = ProgressReporter(4, emit=lines.append)
        line = reporter.advance(note="cell-a")
        assert line.startswith("[1/4] 25% cells")
        assert "eta" in line and "cell-a" in line
        reporter.advance(3)
        assert lines[-1].startswith("[4/4] 100%") and "eta" not in lines[-1]

    def test_unknown_total_counts_without_percentage(self):
        reporter = ProgressReporter(0)
        line = reporter.advance()
        assert line.startswith("[1] cells") and "%" not in line


# --------------------------------------------------------------------------- #
# Determinism: tracing must never touch canonical output.
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def sweep_inputs():
    dataset = SyntheticMNIST(n_samples=120, image_size=16, rng=7)
    _, test_set = train_test_split(dataset, test_fraction=0.5, rng=7)
    return test_set


def _run_sweep(test_set, backend, workers, mode, tmp_path=None):
    model = build_mlp(256, depth=2, width=16, num_classes=10, rng=5)
    engine = DriftSweepEngine(model, test_set, trials=3, workers=workers,
                              backend=backend, trial_batch=2,
                              rng=np.random.default_rng(11),
                              drift_factory=LogNormalDrift)
    if mode == "off":
        return engine.run((0.0, 0.4), label="t"), None
    telemetry = Telemetry()
    with using(telemetry):
        report = engine.run((0.0, 0.4), label="t")
    snapshot = telemetry.snapshot()
    if mode == "export":
        write_trace_jsonl(snapshot, tmp_path / f"{backend}-{workers}.jsonl")
    return report, snapshot


class TestSweepDeterminism:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 0), ("process", 2), ("shared_memory", 2)])
    @pytest.mark.parametrize("mode", ["on", "export"])
    def test_canonical_report_identical_traced_or_not(
            self, sweep_inputs, tmp_path, backend, workers, mode):
        baseline, _ = _run_sweep(sweep_inputs, "serial", 0, "off")
        report, snapshot = _run_sweep(sweep_inputs, backend, workers, mode,
                                      tmp_path)
        assert report.to_json(canonical=True) == \
            baseline.to_json(canonical=True)
        assert snapshot["metrics"]["counters"]["evaluations_total"] > 0
        names = {span["name"]
                 for root in snapshot["spans"]
                 for span in _walk_all(root)}
        assert {"sweep", "sigma", "chunk"} <= names

    @pytest.mark.parametrize("backend", ["process", "shared_memory"])
    def test_worker_spans_ship_back_tagged_remote(self, sweep_inputs, backend):
        _, snapshot = _run_sweep(sweep_inputs, backend, 2, "on")
        remote = [span for root in snapshot["spans"]
                  for span in _walk_all(root)
                  if span["attrs"].get("remote")]
        assert remote and all(span["name"] == "task" for span in remote)
        assert snapshot["metrics"]["counters"]["tasks_shipped"] > 0


def _walk_all(span):
    yield span
    for child in span.get("children", ()):
        yield from _walk_all(child)


class TestSearchDeterminism:
    def _search_json(self, split, traced: bool) -> str:
        from repro.core import (
            BayesFTSearch, DriftMarginalizedObjective, DropoutSearchSpace,
        )
        train_set, test_set = split
        model = build_mlp(256, depth=3, width=16, num_classes=10, rng=5)
        space = DropoutSearchSpace(model)
        objective = DriftMarginalizedObjective(test_set, sigma=0.7,
                                               monte_carlo_samples=2,
                                               metric="accuracy", rng=7)
        search = BayesFTSearch(space, objective, train_set,
                               epochs_per_trial=1, learning_rate=0.1, rng=9,
                               suggest_batch=2, search_workers=2)
        if not traced:
            return search.run(n_trials=4).to_json()
        telemetry = Telemetry()
        with using(telemetry):
            result = search.run(n_trials=4)
        names = {span["name"]
                 for root in telemetry.snapshot()["spans"]
                 for span in _walk_all(root)}
        assert {"bo_batch", "suggest_batch", "search_trial"} <= names
        return result.to_json()

    def test_async_search_bytes_identical_traced_or_not(self):
        dataset = SyntheticMNIST(n_samples=160, image_size=16, rng=3)
        split = train_test_split(dataset, test_fraction=0.25, rng=3)
        assert self._search_json(split, False) == \
            self._search_json(split, True)


# --------------------------------------------------------------------------- #
def tiny_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="tiny", model="mlp", dataset="mnist",
        fault=FaultSpec("lognormal"), sigmas=(0.0, 0.8), trials=2, seed=3,
        train=ExperimentConfig(epochs=1, train_samples=64, test_samples=32,
                               batch_size=32, learning_rate=0.1))
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestRunnerIntegration:
    def test_store_report_bytes_identical_traced_or_not(self, tmp_path):
        blobs = {}
        for mode in ("off", "on"):
            store = ResultStore(tmp_path / mode)
            runner = ScenarioRunner(store)
            if mode == "on":
                with using(Telemetry()):
                    runner.run(tiny_spec(), scenario="s")
            else:
                runner.run(tiny_spec(), scenario="s")
            entry = store.path_for(tiny_spec())
            blobs[mode] = {name: (entry / name).read_bytes()
                           for name in ("spec.json", "report.json")}
        assert blobs["off"] == blobs["on"]

    def test_meta_json_gets_volatile_telemetry_summary(self, tmp_path):
        store = ResultStore(tmp_path)
        with using(Telemetry()):
            ScenarioRunner(store).run(tiny_spec(), scenario="s")
        meta = json.loads(
            (store.path_for(tiny_spec()) / "meta.json").read_text())
        assert meta["telemetry"]["cell"]["count"] == 1
        assert "sweep" in meta["telemetry"]

    def test_untraced_meta_has_no_telemetry(self, tmp_path):
        store = ResultStore(tmp_path)
        ScenarioRunner(store).run(tiny_spec(), scenario="s")
        meta = json.loads(
            (store.path_for(tiny_spec()) / "meta.json").read_text())
        assert "telemetry" not in meta

    def test_reporter_advances_per_cell(self, tmp_path):
        lines = []
        runner = ScenarioRunner(ResultStore(tmp_path),
                                reporter=ProgressReporter(2, emit=lines.append))
        runner.run_specs([tiny_spec(), tiny_spec(name="tiny2", seed=4)])
        assert len(lines) == 2 and lines[-1].startswith("[2/2]")


class TestFallbackSurfacing:
    def test_cell_pool_fallback_recorded_as_counter(self, tmp_path, monkeypatch):
        class BrokenPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, *args, **kwargs):
                raise BrokenExecutor("no forks today")

        monkeypatch.setattr(cells_module, "ProcessPoolExecutor", BrokenPool)
        specs = [tiny_spec(), tiny_spec(name="tiny2", seed=4)]
        telemetry = Telemetry()
        # The warm runtime would lease a real pool and never touch the
        # patched constructor; this test targets the cold path's breakage
        # classification, so opt out for its duration.
        from repro.execution.runtime import ExecutionRuntime, using_runtime
        with using_runtime(ExecutionRuntime(enabled=False)), using(telemetry):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                results, reason = run_cells(specs, str(tmp_path), None,
                                            workers=2)
        assert reason is not None and "BrokenExecutor" in reason
        assert all(result["report"] for result in results)
        counters = telemetry.snapshot()["metrics"]["counters"]
        assert counters["cell_pool_fallbacks"] == 1

    def test_runner_degraded_records_cell_fallback(self, tmp_path, monkeypatch):
        def broken_run_cells(specs, store_root, scenario, workers,
                             runner_kwargs=None, progress=None):
            results = []
            for payload in [spec.to_dict() for spec in specs]:
                result = cells_module._execute_cell(payload, store_root,
                                                    scenario,
                                                    dict(runner_kwargs or {}))
                result.pop("telemetry", None)
                results.append(result)
                if progress is not None:
                    progress(result)
            return results, "BrokenExecutor: no forks today"

        import repro.scenarios.runner as runner_module
        monkeypatch.setattr(runner_module, "run_cells", broken_run_cells)
        runner = ScenarioRunner(ResultStore(tmp_path))
        runner.run_specs([tiny_spec(), tiny_spec(name="tiny2", seed=4)],
                         scenario="s", backend="process", cell_workers=2)
        assert any(event["layer"] == "cell_fanout"
                   for event in runner.degraded)


# --------------------------------------------------------------------------- #
class TestCli:
    def test_run_trace_progress_and_summarize(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert cli_main(["run", "smoke", "--out", str(tmp_path / "results"),
                         "--trace", str(trace), "--progress"]) == 0
        captured = capsys.readouterr()
        assert trace.is_file()
        assert "trace written to" in captured.out
        assert "[1/1] 100% cells" in captured.err

        assert cli_main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "spans, wall" in out and "cache hit rate" in out

        assert cli_main(["trace", "summarize", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["span_count"] > 0
        assert {"cell", "sweep"} <= {row["name"] for row in payload["spans"]}

    def test_run_json_payload_carries_telemetry_and_degraded(
            self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert cli_main(["run", "smoke", "--out", str(tmp_path / "results"),
                         "--trace", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["degraded"] == []
        assert payload["telemetry"]["trace"] == str(trace)
        assert payload["telemetry"]["counters"]["evaluations_total"] > 0

    def test_run_without_trace_stays_untraced(self, tmp_path, capsys):
        assert cli_main(["run", "smoke", "--out", str(tmp_path / "results"),
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" not in payload
        assert current() is NULL_TELEMETRY
