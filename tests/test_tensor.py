"""Tests for the autograd Tensor: forward values and analytic gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled, unbroadcast


def numeric_gradient(func, array, index, eps=1e-6):
    """Central-difference derivative of ``func`` w.r.t. ``array[index]``."""
    perturbed = array.copy()
    perturbed[index] += eps
    high = func(perturbed)
    perturbed[index] -= 2 * eps
    low = func(perturbed)
    return (high - low) / (2 * eps)


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_integer_arrays_preserved(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.integer)

    def test_requires_grad_flag(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert t.requires_grad
        assert Tensor(np.ones(3)).requires_grad is False

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor(np.zeros(2)))

    def test_item_on_scalar(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_independent(self):
        t = Tensor(np.ones(3))
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_zeros_ones_randn_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert np.all(Tensor.ones(2).data == 1.0)
        assert Tensor.randn(4, 4, rng=np.random.default_rng(0)).shape == (4, 4)


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_backward_without_grad_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_nonscalar_requires_grad_argument(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()


class TestUnbroadcast:
    def test_no_change_when_shapes_match(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)).shape == (2, 3)

    def test_sum_over_added_leading_axis(self):
        grad = np.ones((4, 2, 3))
        reduced = unbroadcast(grad, (2, 3))
        assert reduced.shape == (2, 3)
        assert np.all(reduced == 4.0)

    def test_sum_over_broadcast_axis(self):
        grad = np.ones((2, 3))
        reduced = unbroadcast(grad, (1, 3))
        assert reduced.shape == (1, 3)
        assert np.all(reduced == 2.0)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_total_is_preserved(self, rows, cols):
        grad = np.ones((rows, cols))
        reduced = unbroadcast(grad, (1, cols))
        assert reduced.sum() == pytest.approx(grad.sum())


class TestArithmeticGradients:
    def test_add_gradients(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_add_broadcast_gradient(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(b.grad, 3.0)

    def test_sub_gradients(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, -1.0)

    def test_rsub_with_scalar(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (5.0 - a).sum().backward()
        assert np.allclose(a.grad, -1.0)

    def test_mul_gradients(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([5.0, 7.0]), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5.0, 7.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_gradients(self):
        a = Tensor(np.array([6.0]), requires_grad=True)
        b = Tensor(np.array([3.0]), requires_grad=True)
        (a / b).backward()
        assert a.grad[0] == pytest.approx(1 / 3)
        assert b.grad[0] == pytest.approx(-6 / 9)

    def test_rtruediv_scalar(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (1.0 / a).backward()
        assert a.grad[0] == pytest.approx(-0.25)

    def test_pow_gradient(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        (a ** 2).backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor(np.array([2.0]))

    def test_neg_gradient(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        (-a).backward()
        assert a.grad[0] == pytest.approx(-1.0)

    def test_matmul_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        a_data = rng.standard_normal((3, 4))
        b_data = rng.standard_normal((4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()

        def loss_wrt_a(array):
            return (array @ b_data).sum()

        numeric = numeric_gradient(loss_wrt_a, a_data, (1, 2))
        assert a.grad[1, 2] == pytest.approx(numeric, rel=1e-5)

    def test_gradient_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        y = a * 3.0 + a * 4.0
        y.backward()
        assert a.grad[0] == pytest.approx(7.0)

    def test_comparison_returns_numpy(self):
        a = Tensor(np.array([1.0, 5.0]))
        assert isinstance(a > 2.0, np.ndarray)
        assert (a > 2.0).tolist() == [False, True]


class TestElementwiseGradients:
    @pytest.mark.parametrize("op, derivative", [
        ("exp", lambda x: np.exp(x)),
        ("log", lambda x: 1.0 / x),
        ("tanh", lambda x: 1.0 - np.tanh(x) ** 2),
        ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
        ("abs", lambda x: np.sign(x)),
    ])
    def test_unary_gradients(self, op, derivative):
        data = np.array([0.5, 1.5, 2.5])
        x = Tensor(data, requires_grad=True)
        getattr(x, op)().sum().backward()
        assert np.allclose(x.grad, derivative(data), rtol=1e-6)

    def test_sqrt_gradient(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        x.sqrt().backward()
        assert x.grad[0] == pytest.approx(0.25)

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_gradient_routes_to_larger(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        a.maximum(b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])


class TestReductionGradients:
    def test_sum_gradient_all(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_sum_gradient_axis(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=0).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_gradient(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 8)

    def test_mean_axis_gradient(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_var_value(self):
        x = Tensor(np.array([1.0, 2.0, 3.0, 4.0]))
        assert x.var().item() == pytest.approx(np.var([1, 2, 3, 4]))

    def test_max_gradient_goes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([3.0, 3.0]), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5])

    def test_min_value(self):
        x = Tensor(np.array([4.0, -2.0, 7.0]))
        assert x.min().item() == pytest.approx(-2.0)

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, values):
        x = Tensor(np.array(values))
        assert x.sum().item() == pytest.approx(np.sum(values), rel=1e-9, abs=1e-9)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.flatten().shape == (2, 12)

    def test_transpose_default_reverses(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_transpose_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.transpose().sum().backward()
        assert x.grad.shape == (2, 3)

    def test_getitem_gradient_scatters(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        assert np.allclose(x.grad, [0, 1, 1, 0, 0])

    def test_getitem_fancy_index_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x[np.array([0, 1]), np.array([1, 2])].sum().backward()
        assert x.grad[0, 1] == 1.0 and x.grad[1, 2] == 1.0
        assert x.grad.sum() == 2.0

    def test_pad2d_and_gradient(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        padded = x.pad2d(1)
        assert padded.shape == (1, 1, 4, 4)
        padded.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_concatenate_values_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((3, 2)), requires_grad=True)
        cat = Tensor.concatenate([a, b], axis=0)
        assert cat.shape == (5, 2)
        cat.sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_stack_values_and_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        stacked = Tensor.stack([a, b], axis=0)
        assert stacked.shape == (2, 3)
        stacked.sum().backward()
        assert np.allclose(a.grad, 1.0)


class TestDeepGraphs:
    def test_deep_chain_does_not_hit_recursion_limit(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).backward()
        assert x.grad[0] == pytest.approx(7.0)
