"""Tests for robustness evaluation, detection metrics, statistics and training."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import SyntheticMNIST, SyntheticPedestrians, Dataset, train_test_split
from repro.evaluation import (
    accuracy, accuracy_under_drift, robustness_curve, RobustnessCurve,
    average_precision, mean_average_precision, map_under_drift,
    curve_auc, sigma_at_accuracy, compare_curves, mean_confidence_interval,
)
from repro.models import build_mlp, TinyDetector
from repro.models.detection import Detection
from repro.training import Trainer, TrainingResult, train_classifier, train_detector
from repro.utils.config import ExperimentConfig


@pytest.fixture(scope="module")
def trained_model_and_split():
    dataset = SyntheticMNIST(n_samples=320, image_size=16, rng=5)
    train_set, test_set = train_test_split(dataset, test_fraction=0.25, rng=5)
    model = build_mlp(256, depth=3, width=96, num_classes=10, rng=5)
    train_classifier(model, train_set, epochs=10, learning_rate=0.1, rng=5)
    return model, train_set, test_set


class TestAccuracyAndRobustness:
    def test_accuracy_of_trained_model_is_high(self, trained_model_and_split):
        model, _, test_set = trained_model_and_split
        assert accuracy(model, test_set) > 0.8

    def test_accuracy_under_zero_drift_matches_clean(self, trained_model_and_split):
        model, _, test_set = trained_model_and_split
        clean = accuracy(model, test_set)
        drifted, std = accuracy_under_drift(model, test_set, sigma=0.0, trials=2, rng=0)
        assert drifted == pytest.approx(clean)
        assert std == pytest.approx(0.0)

    def test_accuracy_degrades_with_large_drift(self, trained_model_and_split):
        model, _, test_set = trained_model_and_split
        clean = accuracy(model, test_set)
        drifted, _ = accuracy_under_drift(model, test_set, sigma=1.5, trials=4, rng=0)
        assert drifted < clean

    def test_weights_unchanged_after_sweep(self, trained_model_and_split):
        model, _, test_set = trained_model_and_split
        before = model.state_dict()
        robustness_curve(model, test_set, sigmas=(0.0, 1.0), trials=2, rng=0)
        for key, value in model.state_dict().items():
            assert np.array_equal(before[key], value)

    def test_curve_structure(self, trained_model_and_split):
        model, _, test_set = trained_model_and_split
        curve = robustness_curve(model, test_set, sigmas=(0.0, 0.5, 1.0), trials=2,
                                 label="test", rng=0)
        assert len(curve) == 3
        assert curve.label == "test"
        assert curve.accuracy_at(0.0) == curve.means[0]
        as_dict = curve.as_dict()
        assert set(as_dict) == {"label", "sigmas", "means", "stds"}

    def test_trials_validation(self, trained_model_and_split):
        model, _, test_set = trained_model_and_split
        with pytest.raises(ValueError):
            accuracy_under_drift(model, test_set, sigma=0.5, trials=0)


class TestCurveStatistics:
    def _curve(self, means, sigmas=(0.0, 0.5, 1.0, 1.5)):
        curve = RobustnessCurve(label="x")
        for sigma, mean in zip(sigmas, means):
            curve.add(sigma, mean, 0.0)
        return curve

    def test_auc_of_constant_curve(self):
        assert curve_auc(self._curve([0.8, 0.8, 0.8, 0.8])) == pytest.approx(0.8)

    def test_auc_prefers_more_robust_curve(self):
        robust = self._curve([0.9, 0.9, 0.8, 0.7])
        fragile = self._curve([0.9, 0.5, 0.2, 0.1])
        assert curve_auc(robust) > curve_auc(fragile)

    def test_sigma_at_accuracy_interpolates(self):
        curve = self._curve([1.0, 1.0, 0.4, 0.2])
        crossing = sigma_at_accuracy(curve, threshold=0.7)
        assert 0.5 < crossing < 1.0

    def test_sigma_at_accuracy_edge_cases(self):
        always_low = self._curve([0.3, 0.2, 0.1, 0.1])
        never_drops = self._curve([0.95, 0.94, 0.93, 0.92])
        assert sigma_at_accuracy(always_low, 0.5) == 0.0
        assert sigma_at_accuracy(never_drops, 0.5) == 1.5

    def test_compare_curves_summary(self):
        a = self._curve([0.9, 0.8, 0.7, 0.6])
        b = self._curve([0.9, 0.6, 0.3, 0.2])
        summary = compare_curves(a, b)
        assert summary["auc_a"] > summary["auc_b"]
        assert summary["a_wins_fraction"] >= 0.75

    def test_compare_curves_requires_same_grid(self):
        a = self._curve([0.9, 0.8, 0.7, 0.6])
        b = self._curve([0.9, 0.8, 0.7], sigmas=(0.0, 0.5, 1.0))
        with pytest.raises(ValueError):
            compare_curves(a, b)

    def test_mean_confidence_interval(self):
        mean, half = mean_confidence_interval([1.0, 1.2, 0.8, 1.1, 0.9])
        assert mean == pytest.approx(1.0)
        assert half > 0
        single_mean, single_half = mean_confidence_interval([2.0])
        assert single_mean == 2.0 and single_half == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_auc_bounded_by_curve_extremes(self, means):
        curve = self._curve(means)
        auc = curve_auc(curve)
        assert min(means) - 1e-9 <= auc <= max(means) + 1e-9


class TestDetectionMetrics:
    def _perfect_predictions(self, truths):
        return [[Detection(box=box.copy(), score=0.9) for box in boxes] for boxes in truths]

    def test_perfect_detections_give_ap_one(self):
        truths = [np.array([[2.0, 2.0, 10.0, 20.0]]), np.array([[5.0, 5.0, 15.0, 25.0]])]
        assert average_precision(self._perfect_predictions(truths), truths) == pytest.approx(1.0)

    def test_missed_objects_reduce_ap(self):
        truths = [np.array([[2.0, 2.0, 10.0, 20.0], [20.0, 2.0, 28.0, 20.0]])]
        predictions = [[Detection(box=np.array([2.0, 2.0, 10.0, 20.0]), score=0.9)]]
        assert average_precision(predictions, truths) == pytest.approx(0.5)

    def test_false_positives_reduce_ap(self):
        truths = [np.array([[2.0, 2.0, 10.0, 20.0]])]
        predictions = [[Detection(box=np.array([20.0, 20.0, 30.0, 30.0]), score=0.95),
                        Detection(box=np.array([2.0, 2.0, 10.0, 20.0]), score=0.5)]]
        assert 0.0 < average_precision(predictions, truths) < 1.0

    def test_no_ground_truth_gives_zero(self):
        assert average_precision([[]], [np.zeros((0, 4))]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_precision([[]], [np.zeros((0, 4)), np.zeros((0, 4))])

    def test_map_under_drift_structure(self):
        dataset = SyntheticPedestrians(n_samples=8, image_size=32, rng=0)
        detector = TinyDetector(image_size=32, width=4, grid_size=8, rng=0)
        result = map_under_drift(detector, dataset.samples, sigmas=(0.0, 0.5), trials=2, rng=0)
        assert result["sigmas"] == [0.0, 0.5]
        assert len(result["means"]) == 2
        assert all(0.0 <= m <= 1.0 for m in result["means"])

    def test_trained_detector_map_beats_untrained(self):
        dataset = SyntheticPedestrians(n_samples=24, image_size=32, rng=1)
        train, test = dataset.split(test_fraction=0.25, rng=1)
        trained = TinyDetector(image_size=32, width=8, grid_size=8, rng=1)
        untrained = TinyDetector(image_size=32, width=8, grid_size=8, rng=2)
        train_detector(trained, train, epochs=8, learning_rate=0.01, rng=1)
        assert mean_average_precision(trained, test) >= mean_average_precision(untrained, test)


class TestTrainer:
    def test_fit_reduces_loss(self):
        dataset = SyntheticMNIST(n_samples=120, image_size=16, rng=9)
        model = build_mlp(256, depth=3, width=32, num_classes=10, rng=9)
        trainer = Trainer(model, learning_rate=0.1, rng=9)
        result = trainer.fit(dataset, epochs=4, batch_size=32)
        assert isinstance(result, TrainingResult)
        assert result.epochs == 4
        assert result.train_losses[-1] < result.train_losses[0]
        assert result.final_accuracy > 0.5
        assert result.final_loss == result.train_losses[-1]

    def test_adam_optimizer_option(self):
        dataset = SyntheticMNIST(n_samples=80, image_size=16, rng=9)
        model = build_mlp(256, depth=2, width=16, num_classes=10, rng=9)
        trainer = Trainer(model, learning_rate=0.002, optimizer="adam", rng=9)
        result = trainer.fit(dataset, epochs=2, batch_size=32)
        assert result.train_losses[-1] <= result.train_losses[0]

    def test_unknown_optimizer_rejected(self):
        model = build_mlp(16, depth=2, width=8, num_classes=3, rng=0)
        with pytest.raises(ValueError):
            Trainer(model, optimizer="lbfgs")

    def test_loss_hook_is_called(self):
        dataset = SyntheticMNIST(n_samples=40, image_size=16, rng=9)
        calls = []

        def hook(model, inputs, labels, loss):
            calls.append(1)
            return loss

        model = build_mlp(256, depth=2, width=8, num_classes=10, rng=0)
        Trainer(model, learning_rate=0.05, loss_hook=hook, rng=0).fit(dataset, epochs=1)
        assert len(calls) >= 1

    def test_empty_training_result_defaults(self):
        result = TrainingResult()
        assert np.isnan(result.final_loss)
        assert np.isnan(result.final_accuracy)

    def test_train_detector_reduces_loss(self):
        dataset = SyntheticPedestrians(n_samples=12, image_size=32, rng=2)
        detector = TinyDetector(image_size=32, width=4, grid_size=8, rng=2)
        losses = train_detector(detector, dataset.samples, epochs=4, learning_rate=0.02, rng=2)
        assert len(losses) == 4
        assert losses[-1] < losses[0]
