"""Tests for the model zoo: shapes, dropout placement, trainability hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MLP, build_mlp, LeNet5, AlexNetS, VGG11S, ResNet18S, PreActResNetS,
    SpatialTransformerClassifier, TinyDetector, build_model, available_models,
)
from repro.models.detection import Detection, box_iou, non_max_suppression
from repro.models.stn import affine_grid_sample
from repro.nn.layers import Dropout
from repro.nn.tensor import Tensor


def _count_dropout_layers(model):
    return sum(1 for _, module in model.named_modules() if isinstance(module, Dropout))


class TestMLP:
    def test_forward_shape(self):
        model = MLP(64, hidden_dims=(32, 16), num_classes=7, rng=0)
        assert model(Tensor(np.zeros((5, 64)))).shape == (5, 7)

    def test_accepts_image_input_via_flatten(self):
        model = MLP(256, hidden_dims=(32,), num_classes=10, rng=0)
        assert model(Tensor(np.zeros((2, 1, 16, 16)))).shape == (2, 10)

    def test_build_mlp_depth_semantics(self):
        model = build_mlp(64, depth=3, width=16, num_classes=4, rng=0)
        linear_count = sum(1 for _, m in model.named_modules() if isinstance(m, nn.Linear))
        assert linear_count == 3  # two hidden + one output layer

    def test_build_mlp_rejects_shallow(self):
        with pytest.raises(ValueError):
            build_mlp(10, depth=1)

    def test_dropout_layer_per_hidden_layer(self):
        model = MLP(32, hidden_dims=(16, 16, 16), num_classes=3, dropout="dropout", rng=0)
        assert _count_dropout_layers(model) == 3

    def test_no_dropout_option(self):
        model = MLP(32, hidden_dims=(16,), num_classes=3, dropout="none", rng=0)
        assert _count_dropout_layers(model) == 0

    @pytest.mark.parametrize("norm", ["none", "batch", "layer"])
    def test_normalization_variants_forward(self, norm):
        model = MLP(32, hidden_dims=(16,), num_classes=3, normalization=norm, rng=0)
        assert model(Tensor(np.random.default_rng(0).standard_normal((4, 32)))).shape == (4, 3)

    @pytest.mark.parametrize("activation", ["relu", "leaky_relu", "elu", "gelu"])
    def test_activation_variants_forward(self, activation):
        model = MLP(32, hidden_dims=(16,), num_classes=3, activation=activation, rng=0)
        assert model(Tensor(np.zeros((2, 32)))).shape == (2, 3)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MLP(0, (8,), 2)
        with pytest.raises(ValueError):
            MLP(8, (8,), 2, normalization="instance")
        with pytest.raises(ValueError):
            MLP(8, (8,), 2, dropout="bogus")


class TestConvolutionalModels:
    def test_lenet_forward_and_dropout_count(self):
        model = LeNet5(num_classes=10, in_channels=1, image_size=16, rng=0)
        assert model(Tensor(np.zeros((2, 1, 16, 16)))).shape == (2, 10)
        assert _count_dropout_layers(model) == 4

    def test_lenet_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            LeNet5(image_size=15)

    def test_alexnet_forward(self):
        model = AlexNetS(num_classes=10, image_size=16, width=4, rng=0)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 10)

    def test_vgg_forward(self):
        model = VGG11S(num_classes=10, width=4, rng=0)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 10)

    def test_resnet_forward_and_norm_toggle(self):
        with_norm = ResNet18S(num_classes=10, width=4, use_norm=True, rng=0)
        without_norm = ResNet18S(num_classes=10, width=4, use_norm=False, rng=0)
        x = Tensor(np.zeros((2, 3, 16, 16)))
        assert with_norm(x).shape == (2, 10)
        assert without_norm(x).shape == (2, 10)
        norm_params = [n for n, _ in without_norm.named_parameters() if "norm" in n]
        assert not norm_params

    def test_preact_depth_ordering(self):
        shallow = PreActResNetS(depth=18, width=4, rng=0)
        mid = PreActResNetS(depth=50, width=4, rng=0)
        deep = PreActResNetS(depth=152, width=4, depth_scale=0.25, rng=0)
        assert shallow.num_blocks < mid.num_blocks
        assert PreActResNetS(depth=152, width=4, depth_scale=1.0, rng=0).num_blocks > mid.num_blocks
        assert deep(Tensor(np.zeros((1, 3, 16, 16)))).shape == (1, 10)

    def test_preact_invalid_depth(self):
        with pytest.raises(ValueError):
            PreActResNetS(depth=34)
        with pytest.raises(ValueError):
            PreActResNetS(depth=18, depth_scale=0.0)

    def test_all_models_have_dropout_for_bayesft(self):
        for name in available_models():
            if name == "detector":
                model = build_model(name, image_size=32, in_channels=3, rng=0)
            elif name in ("mlp", "lenet"):
                model = build_model(name, num_classes=10, in_channels=1, image_size=16, rng=0)
            else:
                model = build_model(name, num_classes=10, in_channels=3, image_size=16,
                                    width=4, rng=0)
            assert _count_dropout_layers(model) >= 1, f"{name} has no dropout layers"


class TestSpatialTransformer:
    def test_affine_identity_reproduces_input(self):
        images = np.random.default_rng(0).random((2, 3, 8, 8))
        theta = np.tile(np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]), (2, 1, 1))
        out = affine_grid_sample(Tensor(images), Tensor(theta))
        assert np.allclose(out.data, images, atol=1e-12)

    def test_affine_translation_shifts_content(self):
        images = np.zeros((1, 1, 9, 9))
        images[0, 0, 4, 4] = 1.0
        # Shift the sampling grid to the right: output samples from x+dx.
        theta = np.array([[[1.0, 0.0, 0.25], [0.0, 1.0, 0.0]]])
        out = affine_grid_sample(Tensor(images), Tensor(theta)).data
        assert out[0, 0, 4, 4] != 1.0
        assert out.max() > 0.0

    def test_theta_shape_validation(self):
        with pytest.raises(ValueError):
            affine_grid_sample(Tensor(np.zeros((2, 1, 4, 4))), Tensor(np.zeros((2, 6))))

    def test_stn_forward_shape(self):
        model = SpatialTransformerClassifier(num_classes=43, image_size=16, width=4, rng=0)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 43)

    def test_stn_initial_transform_is_identity(self):
        model = SpatialTransformerClassifier(num_classes=5, image_size=16, width=4, rng=0)
        images = Tensor(np.random.default_rng(0).random((2, 3, 16, 16)))
        transformed = model.transform(images)
        assert np.allclose(transformed.data, images.data, atol=1e-8)


class TestTinyDetector:
    def test_forward_shape(self):
        detector = TinyDetector(image_size=32, grid_size=8, width=4, rng=0)
        out = detector(Tensor(np.zeros((2, 3, 32, 32))))
        assert out.shape == (2, 5, 8, 8)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TinyDetector(image_size=30, grid_size=8)
        with pytest.raises(ValueError):
            TinyDetector(image_size=32, grid_size=2)

    def test_encode_targets_marks_object_cells(self):
        detector = TinyDetector(image_size=32, grid_size=8, width=4, rng=0)
        boxes = [np.array([[4.0, 4.0, 12.0, 20.0]])]
        objectness, targets, mask = detector.encode_targets(boxes)
        assert objectness.sum() == 1.0
        assert mask.sum() == 1.0
        row, col = np.argwhere(mask[0] == 1.0)[0]
        assert targets[0, 2, row, col] == pytest.approx(np.log(8.0 / 4.0))

    def test_loss_is_finite_and_differentiable(self):
        detector = TinyDetector(image_size=32, grid_size=8, width=4, rng=0)
        images = Tensor(np.random.default_rng(0).random((2, 3, 32, 32)))
        boxes = [np.array([[2.0, 2.0, 10.0, 20.0]]), np.array([[8.0, 8.0, 16.0, 28.0]])]
        loss = detector.loss(images, boxes)
        loss.backward()
        assert np.isfinite(loss.item())
        assert detector.head.weight.grad is not None

    def test_decode_produces_detections(self):
        detector = TinyDetector(image_size=32, grid_size=8, width=4, rng=0)
        detections = detector.detect(np.random.default_rng(0).random((1, 3, 32, 32)),
                                     score_threshold=0.0)
        assert len(detections) == 1
        assert all(isinstance(d, Detection) for d in detections[0])
        for det in detections[0]:
            assert det.box.min() >= 0 and det.box.max() <= 32


class TestBoxUtilities:
    def test_iou_identical_boxes(self):
        box = np.array([0.0, 0.0, 10.0, 10.0])
        assert box_iou(box, box) == pytest.approx(1.0)

    def test_iou_disjoint_boxes(self):
        assert box_iou(np.array([0, 0, 5, 5]), np.array([6, 6, 10, 10])) == 0.0

    def test_iou_partial_overlap(self):
        a = np.array([0.0, 0.0, 10.0, 10.0])
        b = np.array([5.0, 0.0, 15.0, 10.0])
        assert box_iou(a, b) == pytest.approx(50.0 / 150.0)

    def test_nms_keeps_highest_score(self):
        detections = [
            Detection(box=np.array([0, 0, 10, 10]), score=0.9),
            Detection(box=np.array([1, 1, 11, 11]), score=0.8),
            Detection(box=np.array([20, 20, 30, 30]), score=0.7),
        ]
        kept = non_max_suppression(detections, iou_threshold=0.4)
        assert len(kept) == 2
        assert kept[0].score == pytest.approx(0.9)


class TestModelRegistry:
    def test_available_models_listed(self):
        names = available_models()
        assert {"mlp", "lenet", "alexnet", "vgg11", "resnet18",
                "preact18", "preact50", "preact152", "stn", "detector"} <= set(names)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("transformer-xl")

    def test_build_model_passes_kwargs(self):
        model = build_model("resnet18", num_classes=7, in_channels=3, width=4, rng=0)
        assert model(Tensor(np.zeros((1, 3, 16, 16)))).shape == (1, 7)
