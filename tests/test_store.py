"""Scale and safety tests for the sharded, indexed ResultStore.

Covers the storage layer on its own terms — sharded layout, legacy flat
read-through, `migrate()`, the SQLite index as a pure cache (delete or
corrupt it and nothing changes), rich queries, atomic first-writer-wins
saves, and a multiprocessing hammer for concurrent-writer safety.  The
determinism contract (canonical report bytes identical across layouts and
with the index present or deleted) is asserted byte-for-byte throughout.
"""

import json
import multiprocessing
import re
import shutil
import sqlite3

import pytest

from repro.evaluation.sweep import SweepReport
from repro.scenarios.index import INDEX_FILE, StoreIndex
from repro.scenarios.query import StoreQuery, parse_bound
from repro.scenarios.spec import FaultSpec, ScenarioSpec
from repro.scenarios.store import ResultStore, ResultStoreError
from repro.telemetry import Telemetry, using


def make_spec(name="cell-a", seed=0, **overrides):
    overrides.setdefault("model", "mlp")
    overrides.setdefault("dataset", "mnist")
    return ScenarioSpec(name=name, sigmas=(0.0, 0.8), trials=2, seed=seed,
                        **overrides)


def make_report(spec, worst=0.4):
    return SweepReport(label=spec.name, sigmas=list(spec.sigmas),
                       means=[0.9, worst], stds=[0.0, 0.1],
                       trial_scores=[[0.9, 0.9], [worst, worst]],
                       trials=spec.trials)


def fill(store, n=3, scenario="fill", **overrides):
    specs = []
    for i in range(n):
        spec = make_spec(name=f"cell-{i}", seed=i, **overrides)
        store.save(spec, make_report(spec, worst=0.2 + 0.1 * i),
                   {"scenario": scenario})
        specs.append(spec)
    return specs


STAMP = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\+0000$")


# --------------------------------------------------------------------------- #
class TestShardedLayout:
    def test_entries_land_in_hash_prefix_buckets(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec()
        entry = store.save(spec, make_report(spec))
        spec_hash = spec.spec_hash()
        assert entry == store.root / spec_hash[:2] / spec_hash
        assert store.path_for(spec) == entry

    def test_legacy_flat_entries_read_through(self, tmp_path):
        sharded = ResultStore(tmp_path / "sharded")
        spec = fill(sharded, n=1)[0]
        spec_hash = spec.spec_hash()
        flat_root = tmp_path / "flat"
        shutil.copytree(sharded.entry_dir(spec_hash),
                        flat_root / spec_hash)
        legacy = ResultStore(flat_root)
        assert legacy.contains(spec)
        assert list(legacy.hashes()) == [spec_hash]
        assert legacy.load(spec).means == sharded.load(spec).means

    def test_migrate_preserves_canonical_bytes(self, tmp_path):
        sharded = ResultStore(tmp_path / "seed")
        specs = fill(sharded, n=3)
        flat_root = tmp_path / "flat"
        flat_root.mkdir()
        before = {}
        for spec in specs:
            spec_hash = spec.spec_hash()
            shutil.copytree(sharded.entry_dir(spec_hash),
                            flat_root / spec_hash)
            before[spec_hash] = (
                flat_root / spec_hash / "report.json").read_bytes()
        store = ResultStore(flat_root)
        result = store.migrate()
        assert result["moved"] == 3 and result["entries"] == 3
        for spec in specs:
            spec_hash = spec.spec_hash()
            entry = store.entry_dir(spec_hash)
            assert entry.parent.name == spec_hash[:2]
            assert (entry / "report.json").read_bytes() == before[spec_hash]
        # Idempotent: a second run has nothing left to move.
        assert store.migrate()["moved"] == 0
        assert len(store) == 3

    def test_migrate_drops_flat_duplicate_of_sharded_entry(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = fill(store, n=1)[0]
        spec_hash = spec.spec_hash()
        shutil.copytree(store.entry_dir(spec_hash), store.root / spec_hash)
        result = store.migrate()
        assert result["duplicates"] == 1 and result["moved"] == 0
        assert not (store.root / spec_hash).exists()
        assert store.contains(spec)


# --------------------------------------------------------------------------- #
class TestIndexAsPureCache:
    def test_deleting_index_changes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = fill(store, n=3)
        rows_before = store.query(model="mlp")
        reports_before = {s.spec_hash(): store.load(s).means for s in specs}
        (store.root / INDEX_FILE).unlink()
        fresh = ResultStore(store.root)
        assert fresh.query(model="mlp") == rows_before
        assert {s.spec_hash(): fresh.load(s).means
                for s in specs} == reports_before
        assert all(fresh.contains(spec) for spec in specs)

    def test_corrupt_index_file_recovers_by_rebuild(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fill(store, n=2)
        rows_before = store.query()
        store._index.close()
        (store.root / INDEX_FILE).write_bytes(b"this is not a database")
        fresh = ResultStore(store.root)
        assert fresh.query() == rows_before
        assert len(fresh) == 2

    def test_schema_version_mismatch_wipes_and_rebuilds(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fill(store, n=2)
        store._index.close()
        conn = sqlite3.connect(str(store.root / INDEX_FILE))
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        fresh = ResultStore(store.root)
        assert len(fresh) == 2
        assert len(fresh.query()) == 2

    def test_reindex_reports_and_skips_unparsable(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = fill(store, n=1)[0]
        bogus = store.root / "ab" / ("b" * 64)
        bogus.mkdir(parents=True)
        for name in ("spec.json", "report.json", "meta.json"):
            (bogus / name).write_text("{not json")
        result = store.reindex()
        assert result == {"entries": 1, "skipped": 1}
        assert list(store.hashes()) == [spec.spec_hash()]

    def test_stale_index_row_evicted_by_failed_load(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = fill(store, n=1)[0]
        shutil.rmtree(store.entry_dir(spec.spec_hash()))
        with pytest.raises(ResultStoreError, match="no entry"):
            store.load(spec)
        assert not store.contains(spec)

    def test_index_hit_and_reindex_counters(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = fill(store, n=2)
        telemetry = Telemetry()
        with using(telemetry):
            assert store.contains(specs[0])
            assert store.missing(specs) == []
            store.reindex()
        counters = telemetry.snapshot()["metrics"]["counters"]
        assert counters["store_index_hits"] == 3
        assert counters["store_reindexes"] == 1


# --------------------------------------------------------------------------- #
class TestQueries:
    def test_parse_bound(self):
        assert parse_bound("<0.5") == ("<", 0.5)
        assert parse_bound(">= 0.9") == (">=", 0.9)
        assert parse_bound("!=1") == ("!=", 1.0)
        assert parse_bound(0.25) == ("=", 0.25)
        with pytest.raises(ValueError, match="bad score bound"):
            parse_bound("~0.5")
        with pytest.raises(ValueError, match="bad score bound"):
            parse_bound("<lots")

    def test_query_filters_and_bounds(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fill(store, n=3)  # worst scores 0.2, 0.3, 0.4
        bitflip = make_spec(name="flip", fault=FaultSpec(kind="bitflip"))
        store.save(bitflip, make_report(bitflip, worst=0.1),
                   {"scenario": "faults"})
        assert len(store.query(model="mlp")) == 4
        assert [r["name"] for r in store.query(fault="bitflip")] == ["flip"]
        assert [r["name"] for r in store.query(worst="<0.25")] \
            == ["cell-0", "flip"]
        assert [r["name"] for r in store.query(name="cell-*")] \
            == ["cell-0", "cell-1", "cell-2"]
        assert len(store.query(scenario="faults")) == 1
        assert len(store.query(limit=2)) == 2
        assert store.query(dataset="cifar10") == []
        with pytest.raises(ValueError, match="bad score bound"):
            store.query(worst="approximately small")

    def test_query_rows_carry_summary_columns(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = fill(store, n=1, scenario="smoke")[0]
        (row,) = store.query()
        assert row["hash"] == spec.spec_hash()
        assert row["sigmas"] == [0.0, 0.8]
        assert row["clean"] == 0.9 and row["worst"] == 0.2
        assert row["scenario"] == "smoke"
        assert STAMP.match(row["created_at"])
        assert row["bytes"] > 0

    def test_store_query_rejects_bad_limit(self):
        with pytest.raises(ValueError, match="limit"):
            StoreQuery(limit=0)


# --------------------------------------------------------------------------- #
class TestAtomicSaves:
    def test_save_leaves_no_staging_dirs(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fill(store, n=3)
        assert store.stats()["stale_staging_dirs"] == 0

    def test_duplicate_save_first_writer_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec()
        store.save(spec, make_report(spec), {"scenario": "first"})
        entry = store.save(spec, make_report(spec), {"scenario": "second"})
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["scenario"] == "first"
        assert len(store) == 1
        assert store.stats()["stale_staging_dirs"] == 0

    def test_partial_squatter_never_blocks_a_real_save(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec()
        spec_hash = spec.spec_hash()
        squatter = store.root / spec_hash[:2] / spec_hash
        squatter.mkdir(parents=True)
        (squatter / "spec.json").write_text("{}")  # crash leftover
        store.save(spec, make_report(spec))
        assert store.contains(spec)
        assert store.load(spec).means == [0.9, 0.4]

    def test_missing_batch_probe_preserves_order(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        stored = fill(store, n=2)
        absent = [make_spec(name=f"gap-{i}", seed=10 + i) for i in range(2)]
        mixed = [absent[0], stored[0], absent[1], stored[1]]
        assert store.missing(mixed) == absent

    def test_mtime_fallback_stamp_is_canonical_utc(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = fill(store, n=1)[0]
        spec_hash = spec.spec_hash()
        meta_path = store.entry_dir(spec_hash) / "meta.json"
        meta = json.loads(meta_path.read_text())
        del meta["created_at"]
        meta_path.write_text(json.dumps(meta))
        stamp = store._entry_created_at(spec_hash)
        assert STAMP.match(stamp), stamp

    def test_stats_and_gc_never_walk_entry_trees(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        fill(store, n=3)
        walked = []
        monkeypatch.setattr(
            ResultStore, "_tree_bytes",
            staticmethod(lambda path: walked.append(path) or 0))
        stats = store.stats()
        gc = store.gc(keep_latest=1)
        assert walked == []  # sizes and stamps all came from the index
        assert stats["total_bytes"] > 0 and gc["bytes_freed"] > 0


# --------------------------------------------------------------------------- #
def _hammer_worker(args):
    """Save an overlapping slice of specs into one shared store."""
    root, worker_id, seeds = args
    store = ResultStore(root)
    for seed in seeds:
        spec = make_spec(name=f"hammer-{seed}", seed=seed)
        store.save(spec, make_report(spec),
                   {"scenario": "hammer", "worker": worker_id})
    return worker_id


class TestConcurrentWriters:
    def test_hammer_loses_no_entries(self, tmp_path):
        """N processes save overlapping spec sets into one store: every
        entry present, no stale staging dirs, and a consistent index."""
        root = str(tmp_path / "store")
        n_workers, n_specs = 4, 12
        # Overlapping slices: every spec is saved by at least two workers.
        jobs = [(root, worker, [(worker + offset) % n_specs
                                for offset in range(n_specs // 2)])
                for worker in range(n_workers)]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(n_workers) as pool:
            assert sorted(pool.map(_hammer_worker, jobs)) == [0, 1, 2, 3]
        store = ResultStore(root)
        expected = {make_spec(name=f"hammer-{seed}", seed=seed).spec_hash()
                    for seed in {seed for _, _, seeds in jobs
                                 for seed in seeds}}
        assert set(store.hashes()) == expected
        stats = store.stats()
        assert stats["stale_staging_dirs"] == 0
        assert stats["entries"] == len(expected)
        # The incrementally-maintained index matches a from-disk rebuild.
        incremental = store.query()
        store.reindex()
        rebuilt = store.query()
        assert [row["hash"] for row in incremental] \
            == [row["hash"] for row in rebuilt]
        for spec_hash in expected:
            store.load_entry(spec_hash)  # validates every entry
