"""Tests for repro.nn.functional: activations, softmax, conv/pool lowering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def _numeric_grad(func, array, index, eps=1e-6):
    perturbed = array.copy()
    perturbed[index] += eps
    high = func(perturbed)
    perturbed[index] -= 2 * eps
    low = func(perturbed)
    return (high - low) / (2 * eps)


class TestActivations:
    def test_relu_values(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(F.relu(x).data, [0.0, 0.0, 2.0])

    def test_relu_gradient(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        F.relu(x).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu_negative_slope(self):
        x = Tensor(np.array([-10.0]))
        assert F.leaky_relu(x, 0.1).data[0] == pytest.approx(-1.0)

    def test_elu_continuity_at_zero(self):
        left = F.elu(Tensor(np.array([-1e-9]))).data[0]
        right = F.elu(Tensor(np.array([1e-9]))).data[0]
        assert left == pytest.approx(right, abs=1e-8)

    def test_elu_gradient_matches_numeric(self):
        data = np.array([-0.7, 0.3])
        x = Tensor(data, requires_grad=True)
        F.elu(x).sum().backward()
        for index in range(2):
            numeric = _numeric_grad(lambda a: F.elu(Tensor(a)).data.sum(), data, (index,))
            assert x.grad[index] == pytest.approx(numeric, rel=1e-5)

    def test_gelu_known_values(self):
        # GELU(0) = 0 and GELU(x) ≈ x for large positive x.
        x = Tensor(np.array([0.0, 10.0]))
        out = F.gelu(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(10.0, rel=1e-6)

    def test_gelu_gradient_matches_numeric(self):
        data = np.array([-1.2, 0.4, 2.0])
        x = Tensor(data, requires_grad=True)
        F.gelu(x).sum().backward()
        for index in range(3):
            numeric = _numeric_grad(lambda a: F.gelu(Tensor(a)).data.sum(), data, (index,))
            assert x.grad[index] == pytest.approx(numeric, rel=1e-4)

    @given(st.floats(min_value=-5, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_gelu_bounded_by_relu(self, value):
        gelu_value = F.gelu(Tensor(np.array([value]))).data[0]
        assert gelu_value <= max(value, 0.0) + 1e-9
        assert gelu_value >= min(value, 0.0) - 0.2


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 7)))
        probs = F.softmax(x).data
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(1).standard_normal((3, 5)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10)

    def test_softmax_handles_large_logits(self):
        x = Tensor(np.array([[1000.0, 0.0]]))
        probs = F.softmax(x).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestLinearAndDropoutHelpers:
    def test_linear_matches_manual(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.full((4, 3), 2.0))
        b = Tensor(np.ones(4))
        out = F.linear(x, w, b)
        assert np.allclose(out.data, 7.0)

    def test_dropout_mask_zero_rate_is_ones(self):
        mask = F.dropout_mask((10, 10), 0.0, np.random.default_rng(0))
        assert np.all(mask == 1.0)

    def test_dropout_mask_scaling_preserves_mean(self):
        rng = np.random.default_rng(0)
        mask = F.dropout_mask((200, 200), 0.4, rng)
        assert mask.mean() == pytest.approx(1.0, rel=0.05)

    def test_one_hot_encoding(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(encoded, [[1, 0, 0], [0, 0, 1]])


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self):
        data = np.arange(16.0).reshape(1, 1, 4, 4)
        cols, out_h, out_w = F.im2col(data, 2, 2, 1, 0)
        assert cols.shape == (1, 4, out_h * out_w)
        back = F.col2im(cols, data.shape, 2, 2, 1, 0, out_h, out_w)
        # Each interior pixel participates in several windows, so col2im
        # (a scatter-add) multiplies it by its window count.
        corner_count = back[0, 0, 0, 0] / data[0, 0, 0, 0] if data[0, 0, 0, 0] else 1
        assert back.shape == data.shape
        assert corner_count == pytest.approx(1.0)

    def test_output_spatial_size_with_padding(self):
        data = np.zeros((2, 3, 8, 8))
        _, out_h, out_w = F.im2col(data, 3, 3, 1, 1)
        assert (out_h, out_w) == (8, 8)

    def test_output_spatial_size_with_stride(self):
        data = np.zeros((1, 1, 8, 8))
        _, out_h, out_w = F.im2col(data, 2, 2, 2, 0)
        assert (out_h, out_w) == (4, 4)


class TestConv2d:
    def test_identity_kernel_preserves_input(self):
        x = Tensor(np.random.default_rng(0).standard_normal((1, 1, 5, 5)))
        kernel = np.zeros((1, 1, 3, 3))
        kernel[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, Tensor(kernel), padding=1)
        assert np.allclose(out.data, x.data)

    def test_matches_manual_convolution(self):
        x_data = np.arange(9.0).reshape(1, 1, 3, 3)
        kernel = np.ones((1, 1, 2, 2))
        out = F.conv2d(Tensor(x_data), Tensor(kernel))
        expected = np.array([[8.0, 12.0], [20.0, 24.0]])
        assert np.allclose(out.data[0, 0], expected)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.0, -1.0]))
        out = F.conv2d(x, w, b, padding=1)
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 1], -1.0)

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(0)
        x_data = rng.standard_normal((2, 2, 5, 5))
        w_data = rng.standard_normal((3, 2, 3, 3))
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        F.conv2d(x, w, stride=1, padding=1).sum().backward()

        def loss_wrt_w(array):
            return F.conv2d(Tensor(x_data), Tensor(array), stride=1, padding=1).data.sum()

        def loss_wrt_x(array):
            return F.conv2d(Tensor(array), Tensor(w_data), stride=1, padding=1).data.sum()

        for index in [(0, 0, 1, 1), (2, 1, 0, 2)]:
            assert w.grad[index] == pytest.approx(_numeric_grad(loss_wrt_w, w_data, index), rel=1e-5)
        for index in [(0, 0, 2, 2), (1, 1, 4, 0)]:
            assert x.grad[index] == pytest.approx(_numeric_grad(loss_wrt_x, x_data, index), rel=1e-5)

    def test_strided_output_shape(self):
        out = F.conv2d(Tensor(np.zeros((1, 1, 8, 8))), Tensor(np.zeros((4, 1, 3, 3))),
                       stride=2, padding=1)
        assert out.shape == (1, 4, 4, 4)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        assert F.max_pool2d(x, 2).data[0, 0, 0, 0] == 4.0

    def test_max_pool_gradient_routes_to_max(self):
        data = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        x = Tensor(data, requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert x.grad[0, 0, 1, 1] == 1.0
        assert x.grad.sum() == 1.0

    def test_avg_pool_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        assert F.avg_pool2d(x, 2).data[0, 0, 0, 0] == pytest.approx(2.5)

    def test_avg_pool_gradient_is_uniform(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_adaptive_avg_pool_global(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.adaptive_avg_pool2d(x, 1)
        assert out.shape == (1, 1, 1, 1)
        assert out.data[0, 0, 0, 0] == pytest.approx(7.5)

    def test_adaptive_avg_pool_rejects_other_sizes(self):
        with pytest.raises(NotImplementedError):
            F.adaptive_avg_pool2d(Tensor(np.zeros((1, 1, 4, 4))), 2)
