"""Tests for the Module system, losses and optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestModuleSystem:
    def test_named_parameters_are_recursive(self):
        model = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=0))
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_num_parameters_counts_scalars(self):
        layer = nn.Linear(3, 2, rng=0)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5, rng=0), nn.Linear(2, 2, rng=0))
        model.eval()
        assert all(not child.training for child in model.children())
        model.train()
        assert all(child.training for child in model.children())

    def test_zero_grad_clears_gradients(self):
        layer = nn.Linear(3, 1, rng=0)
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(3, 4, rng=0), nn.Linear(4, 2, rng=1))
        state = model.state_dict()
        clone = nn.Sequential(nn.Linear(3, 4, rng=5), nn.Linear(4, 2, rng=6))
        clone.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_state_dict_includes_buffers(self):
        layer = nn.BatchNorm1d(3)
        assert "running_mean" in layer.state_dict()

    def test_set_buffer_requires_registration(self):
        layer = nn.BatchNorm1d(3)
        with pytest.raises(KeyError):
            layer.set_buffer("not_registered", np.zeros(3))

    def test_sequential_iteration_and_indexing(self):
        model = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(model) == 2
        assert isinstance(model[1], nn.Tanh)
        assert [type(m).__name__ for m in model] == ["ReLU", "Tanh"]

    def test_module_list_registers_children(self):
        holder = nn.ModuleList([nn.Linear(2, 2, rng=0), nn.Linear(2, 2, rng=1)])
        assert len(list(holder.parameters())) == 4
        with pytest.raises(RuntimeError):
            holder(Tensor(np.zeros((1, 2))))

    def test_named_modules_contains_nested(self):
        model = nn.Sequential(nn.Sequential(nn.Linear(2, 2, rng=0)))
        names = [name for name, _ in model.named_modules()]
        assert "0.0" in names

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(Tensor(np.zeros(1)))


class TestLosses:
    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = nn.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(10))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss = nn.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        nn.cross_entropy(logits, np.array([0])).backward()
        expected = np.array([[1 / 3 - 1, 1 / 3, 1 / 3]])
        assert np.allclose(logits.grad, expected)

    def test_mse_loss_value(self):
        loss = nn.mse_loss(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_smooth_l1_quadratic_region(self):
        loss = nn.smooth_l1_loss(Tensor(np.array([0.5])), np.array([0.0]))
        assert loss.item() == pytest.approx(0.125)

    def test_smooth_l1_linear_region(self):
        loss = nn.smooth_l1_loss(Tensor(np.array([3.0])), np.array([0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_bce_with_logits_matches_reference(self):
        logits = np.array([0.3, -1.2, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        loss = nn.bce_with_logits(Tensor(logits), targets)
        reference = np.mean(np.log1p(np.exp(-np.abs(logits)))
                            + np.maximum(logits, 0) - logits * targets)
        assert loss.item() == pytest.approx(reference)

    def test_bce_with_logits_stable_for_large_inputs(self):
        loss = nn.bce_with_logits(Tensor(np.array([1000.0])), np.array([1.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_loss_modules_callable(self):
        assert nn.CrossEntropyLoss()(Tensor(np.zeros((2, 4))), np.array([0, 1])).item() > 0
        assert nn.MSELoss()(Tensor(np.ones(3)), np.zeros(3)).item() == pytest.approx(1.0)
        assert nn.SmoothL1Loss()(Tensor(np.zeros(2)), np.zeros(2)).item() == pytest.approx(0.0)
        assert nn.BCEWithLogitsLoss()(Tensor(np.zeros(2)), np.ones(2)).item() > 0


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        parameter = nn.Parameter(np.zeros(2))

        def loss_fn():
            return ((parameter - Tensor(target)) * (parameter - Tensor(target))).sum()

        return parameter, loss_fn, target

    def test_sgd_converges_on_quadratic(self):
        parameter, loss_fn, target = self._quadratic_problem()
        optimizer = nn.SGD([parameter], lr=0.1)
        for _ in range(100):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=1e-3)

    def test_sgd_momentum_converges_faster_than_plain(self):
        losses = {}
        for momentum in (0.0, 0.9):
            parameter, loss_fn, _ = self._quadratic_problem()
            optimizer = nn.SGD([parameter], lr=0.02, momentum=momentum)
            for _ in range(30):
                loss = loss_fn()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            losses[momentum] = loss_fn().item()
        assert losses[0.9] < losses[0.0]

    def test_adam_converges_on_quadratic(self):
        parameter, loss_fn, target = self._quadratic_problem()
        optimizer = nn.Adam([parameter], lr=0.2)
        for _ in range(200):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=1e-2)

    def test_weight_decay_shrinks_weights(self):
        parameter = nn.Parameter(np.ones(4))
        optimizer = nn.SGD([parameter], lr=0.1, weight_decay=0.5)
        loss = (parameter * 0.0).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        assert np.all(np.abs(parameter.data) < 1.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_negative_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.ones(1))], lr=-0.1)

    def test_step_skips_parameters_without_grad(self):
        parameter = nn.Parameter(np.ones(2))
        optimizer = nn.SGD([parameter], lr=0.1)
        optimizer.step()  # no gradient accumulated yet; must not fail
        assert np.allclose(parameter.data, 1.0)

    def test_set_lr(self):
        optimizer = nn.SGD([nn.Parameter(np.ones(1))], lr=0.1)
        optimizer.set_lr(0.01)
        assert optimizer.lr == pytest.approx(0.01)


class TestInitializers:
    def test_fan_computation_linear_and_conv(self):
        from repro.nn import init
        assert init.fan_in_and_fan_out((10, 20)) == (20, 10)
        assert init.fan_in_and_fan_out((8, 4, 3, 3)) == (4 * 9, 8 * 9)

    def test_fan_rejects_vectors(self):
        from repro.nn import init
        with pytest.raises(ValueError):
            init.fan_in_and_fan_out((5,))

    def test_xavier_normal_std(self):
        from repro.nn import init
        weights = init.xavier_normal((200, 300), np.random.default_rng(0))
        expected_std = np.sqrt(2.0 / 500)
        assert weights.std() == pytest.approx(expected_std, rel=0.05)

    def test_kaiming_normal_std(self):
        from repro.nn import init
        weights = init.kaiming_normal((256, 128), np.random.default_rng(0))
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 128), rel=0.05)

    def test_zeros_and_ones(self):
        from repro.nn import init
        assert np.all(init.zeros((2, 2)) == 0)
        assert np.all(init.ones((2, 2)) == 1)
