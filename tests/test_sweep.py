"""Tests for the vectorized Monte-Carlo drift-sweep engine.

Covers the sweep subsystem end to end: the batched ``sample_batch`` RNG API,
the :class:`FaultInjector` multi-trial mode, worker-count determinism, the
inference cache, snapshot restoration after mid-sweep exceptions, and the
:class:`SweepReport` JSON round trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation import (
    DriftSweepEngine, SweepReport, RobustnessCurve,
    accuracy, accuracy_under_drift, robustness_curve, map_under_drift,
)
from repro.fault.drift import (
    DriftModel, LogNormalDrift, GaussianDrift, UniformDrift, StuckAtFault,
    BitFlipFault, CompositeFault,
)
from repro.fault.injector import FaultInjector
from repro.models import build_mlp, TinyDetector
from repro.data import SyntheticPedestrians
from repro.training import train_classifier


@pytest.fixture(scope="module")
def trained():
    dataset = SyntheticMNIST(n_samples=240, image_size=16, rng=7)
    train_set, test_set = train_test_split(dataset, test_fraction=0.25, rng=7)
    model = build_mlp(256, depth=3, width=48, num_classes=10, rng=7)
    train_classifier(model, train_set, epochs=5, learning_rate=0.1, rng=7)
    return model, test_set


class TestSampleBatch:
    @pytest.mark.parametrize("drift", [
        LogNormalDrift(0.7), GaussianDrift(0.4), UniformDrift(0.5),
        StuckAtFault(0.2), BitFlipFault(0.05),
        CompositeFault(LogNormalDrift(0.5), StuckAtFault(0.1)),
    ])
    def test_batch_matches_sequential_perturb_stream(self, drift):
        """One vectorized call draws the same stream as n perturb calls."""
        weights = np.random.default_rng(3).normal(size=(4, 5))
        batch = drift.sample_batch(weights, 3, rng=np.random.default_rng(11))
        rng = np.random.default_rng(11)
        sequential = np.stack([drift.perturb(weights, rng) for _ in range(3)])
        assert batch.shape == (3, 4, 5)
        np.testing.assert_array_equal(batch, sequential)

    def test_zero_drift_batch_is_clean_copies(self):
        weights = np.arange(6.0).reshape(2, 3)
        batch = LogNormalDrift(0.0).sample_batch(weights, 4, rng=0)
        assert batch.shape == (4, 2, 3)
        for trial in batch:
            np.testing.assert_array_equal(trial, weights)
        batch[0, 0, 0] = 99.0  # the batch must not alias the input
        assert weights[0, 0] == 0.0

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            LogNormalDrift(0.5).sample_batch(np.ones(3), 0)
        with pytest.raises(ValueError):
            GaussianDrift(0.5).sample_batch(np.ones(3), -1)


class TestInjectorMultiTrial:
    def test_draw_trials_shapes_and_apply(self, trained):
        model, _ = trained
        injector = FaultInjector(model, LogNormalDrift(0.5), rng=0)
        with injector.multi_trial():
            batch = injector.draw_trials(3)
            names = dict(model.named_parameters())
            assert set(batch) == set(names)
            for name, arrays in batch.items():
                assert arrays.shape == (3,) + names[name].shape
            injector.apply_trial({name: arrays[1] for name, arrays in batch.items()})
            for name, parameter in model.named_parameters():
                np.testing.assert_array_equal(parameter.data, batch[name][1])
        # Context exit restores the clean weights and drops the snapshot.
        assert injector._snapshot is None

    def test_multi_trial_restores_after_exception(self, trained):
        model, _ = trained
        before = model.state_dict()
        injector = FaultInjector(model, LogNormalDrift(1.0), rng=0)
        with pytest.raises(RuntimeError, match="boom"):
            with injector.multi_trial():
                batch = injector.draw_trials(1)
                injector.apply_trial({name: arrays[0] for name, arrays in batch.items()})
                raise RuntimeError("boom")
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_apply_trial_without_snapshot_raises(self, trained):
        model, _ = trained
        injector = FaultInjector(model, LogNormalDrift(0.5), rng=0)
        with pytest.raises(RuntimeError):
            injector.apply_trial({})


def _failing_eval(model, data):
    raise RuntimeError("evaluation exploded mid-sweep")


class TestDriftSweepEngine:
    SIGMAS = (0.0, 0.6, 1.2)

    def test_serial_report_structure(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=3, rng=0).run(
            self.SIGMAS, label="mlp")
        assert report.label == "mlp"
        assert report.sigmas == list(self.SIGMAS)
        assert len(report.means) == len(report.stds) == len(self.SIGMAS)
        assert all(len(scores) == 3 for scores in report.trial_scores)
        assert report.backend == "serial" and report.workers == 1
        assert report.elapsed_seconds > 0
        assert len(report.per_sigma_seconds) == len(self.SIGMAS)

    def test_deterministic_across_worker_counts(self, trained):
        """A seeded sweep is bit-identical for 1 vs N worker processes."""
        model, test_set = trained
        serial = DriftSweepEngine(model, test_set, trials=3, rng=123).run(self.SIGMAS)
        parallel = DriftSweepEngine(model, test_set, trials=3, rng=123,
                                    workers=2).run(self.SIGMAS)
        assert serial.means == parallel.means
        assert serial.stds == parallel.stds
        assert serial.trial_scores == parallel.trial_scores

    def test_seeded_reruns_are_reproducible(self, trained):
        model, test_set = trained
        first = DriftSweepEngine(model, test_set, trials=2, rng=9).run(self.SIGMAS)
        second = DriftSweepEngine(model, test_set, trials=2, rng=9).run(self.SIGMAS)
        assert first.means == second.means and first.stds == second.stds

    def test_sigma_zero_trials_hit_the_cache(self, trained):
        model, test_set = trained
        trials = 4
        report = DriftSweepEngine(model, test_set, trials=trials, rng=0).run((0.0, 1.0))
        # All σ=0 trials are bit-identical: one evaluation, trials-1 hits.
        assert report.cache_hits >= trials - 1
        assert report.n_evaluations == 2 * trials - report.cache_hits
        assert report.means[0] == pytest.approx(accuracy(model, test_set))
        assert report.stds[0] == 0.0

    def test_cache_disabled_evaluates_every_trial(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=3, rng=0,
                                  cache=False).run((0.0,))
        assert report.cache_hits == 0
        assert report.n_evaluations == 3

    def test_weights_restored_after_failed_sweep(self, trained):
        """An exception mid-sweep must not leak drifted weights."""
        model, test_set = trained
        before = model.state_dict()
        engine = DriftSweepEngine(model, test_set, trials=2, rng=0,
                                  evaluate_fn=_failing_eval)
        with pytest.raises(RuntimeError, match="mid-sweep"):
            engine.run((0.8, 1.2))
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_drift_model_instance_rejected(self, trained):
        model, test_set = trained
        with pytest.raises(TypeError, match="callable mapping sigma"):
            DriftSweepEngine(model, test_set, drift_factory=LogNormalDrift(0.5))

    def test_custom_drift_factory_per_sigma(self, trained):
        model, test_set = trained
        seen = []

        def factory(sigma):
            seen.append(sigma)
            return GaussianDrift(sigma)

        DriftSweepEngine(model, test_set, trials=1, rng=0,
                         drift_factory=factory).run(self.SIGMAS)
        assert seen == list(self.SIGMAS)

    def test_invalid_parameters_rejected(self, trained):
        model, test_set = trained
        with pytest.raises(ValueError):
            DriftSweepEngine(model, test_set, trials=0)
        with pytest.raises(ValueError):
            DriftSweepEngine(model, test_set, workers=-1)

    def test_detection_sweep_through_engine(self):
        """The engine is evaluation-agnostic: mAP sweeps ride it too."""
        dataset = SyntheticPedestrians(n_samples=8, image_size=32, rng=0)
        detector = TinyDetector(image_size=32, width=4, grid_size=8, rng=0)
        result = map_under_drift(detector, dataset.samples, sigmas=(0.0, 0.5),
                                 trials=2, rng=0)
        assert result["sigmas"] == [0.0, 0.5]
        assert all(0.0 <= m <= 1.0 for m in result["means"])


class TestNonDriftFaultSweeps:
    """The whole fault zoo rides the engine's determinism contract.

    FTT-NAS-style fault matrices need stuck-at/bit-flip/composite sweeps to
    be exactly as reproducible as the paper's log-normal drift: seeded runs
    must be bit-identical for any worker count and any chunk size.
    """

    FACTORIES = {
        "stuckat": lambda severity: StuckAtFault(severity),
        "bitflip": lambda severity: BitFlipFault(severity, bits=8),
        "composite": lambda severity: CompositeFault(
            LogNormalDrift(severity), StuckAtFault(0.1 * severity)),
    }
    GRIDS = {
        "stuckat": (0.0, 0.1, 0.25),
        "bitflip": (0.0, 0.02, 0.05),
        "composite": (0.0, 0.5, 1.0),
    }

    def _run(self, trained, kind, workers=0, max_chunk_trials=None):
        model, test_set = trained
        engine = DriftSweepEngine(model, test_set, trials=3, rng=31,
                                  workers=workers,
                                  max_chunk_trials=max_chunk_trials,
                                  drift_factory=self.FACTORIES[kind])
        return engine.run(self.GRIDS[kind], label=kind)

    @pytest.mark.parametrize("kind", sorted(FACTORIES))
    def test_bit_identical_for_workers_and_chunks(self, trained, kind):
        base = self._run(trained, kind)
        for workers, max_chunk in ((0, 1), (0, 2), (2, None), (2, 2)):
            other = self._run(trained, kind, workers, max_chunk)
            assert other.trial_scores == base.trial_scores
            assert other.means == base.means and other.stds == base.stds
            assert other.n_evaluations == base.n_evaluations
            assert other.cache_hits == base.cache_hits

    @pytest.mark.parametrize("kind", sorted(FACTORIES))
    def test_zero_severity_collapses_to_one_evaluation(self, trained, kind):
        """Every zero-severity fault declares is_deterministic() and is
        drawn, hashed and evaluated once per grid point."""
        report = self._run(trained, kind)
        assert report.cache_hits >= report.trials - 1
        assert report.stds[0] == 0.0


def _metrics_eval(model, data):
    """Module-level (score, loss) evaluation for the loss-track tests."""
    from repro.evaluation import accuracy
    score = accuracy(model, data)
    return score, 1.0 - score


@pytest.fixture(scope="module")
def lenet_setup():
    from repro.models import LeNet5
    dataset = SyntheticMNIST(n_samples=96, image_size=16, rng=5)
    _, test_set = train_test_split(dataset, test_fraction=0.5, rng=5)
    model = LeNet5(num_classes=10, image_size=16, width=4, rng=5)
    return model, test_set


class TestChunkedPreDrawing:
    SIGMAS = (0.0, 0.6, 1.2)

    def _run(self, model, test_set, max_chunk_trials):
        return DriftSweepEngine(model, test_set, trials=3, rng=42,
                                max_chunk_trials=max_chunk_trials).run(self.SIGMAS)

    def test_chunk_sizes_are_bit_identical(self, lenet_setup):
        """max_chunk_trials ∈ {1, 3, ∞} draw and score identical trials."""
        model, test_set = lenet_setup
        full = self._run(model, test_set, None)
        for max_chunk in (1, 2, 3):
            chunked = self._run(model, test_set, max_chunk)
            assert chunked.means == full.means
            assert chunked.stds == full.stds
            assert chunked.trial_scores == full.trial_scores
            assert chunked.n_evaluations == full.n_evaluations
            assert chunked.cache_hits == full.cache_hits

    def test_peak_resident_copies_are_bounded(self, lenet_setup):
        """Injector bookkeeping proves at most max_chunk copies were live."""
        model, test_set = lenet_setup
        for max_chunk, expected_peak in ((1, 1), (2, 2), (None, 3)):
            report = self._run(model, test_set, max_chunk)
            assert report.max_chunk_trials == max_chunk
            assert report.peak_resident_trials == expected_peak

    def test_chunking_composes_with_workers(self, lenet_setup):
        model, test_set = lenet_setup
        serial = self._run(model, test_set, None)
        parallel = DriftSweepEngine(model, test_set, trials=3, rng=42, workers=2,
                                    max_chunk_trials=2).run(self.SIGMAS)
        assert parallel.trial_scores == serial.trial_scores

    def test_invalid_chunk_rejected(self, lenet_setup):
        model, test_set = lenet_setup
        with pytest.raises(ValueError):
            DriftSweepEngine(model, test_set, max_chunk_trials=0)


class TestInjectorPlanTrials:
    def test_plan_chunks_concatenate_to_full_draw(self, trained):
        """Splitting the plan into chunks reproduces the one-chunk draw."""
        model, _ = trained
        full_injector = FaultInjector(model, LogNormalDrift(0.7), rng=21)
        with full_injector.multi_trial():
            (count, full), = list(full_injector.plan_trials(5))
        assert count == 5
        chunk_injector = FaultInjector(model, LogNormalDrift(0.7), rng=21)
        with chunk_injector.multi_trial():
            pieces = list(chunk_injector.plan_trials(5, max_chunk=2))
        assert [count for count, _ in pieces] == [2, 2, 1]
        assert chunk_injector.peak_resident_trials == 2
        for name, arrays in full.items():
            rebuilt = np.concatenate([chunk[name] for _, chunk in pieces])
            np.testing.assert_array_equal(rebuilt, arrays)

    def test_plan_rejects_invalid_arguments(self, trained):
        model, _ = trained
        injector = FaultInjector(model, LogNormalDrift(0.5), rng=0)
        with pytest.raises(ValueError):
            list(injector.plan_trials(0))
        with pytest.raises(ValueError):
            list(injector.plan_trials(3, max_chunk=0))


class TestLossTrack:
    def test_pair_evaluate_fn_fills_loss_track(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=2, rng=0,
                                  evaluate_fn=_metrics_eval).run((0.0, 1.0))
        assert len(report.loss_means) == 2
        assert len(report.trial_losses) == 2
        assert all(len(losses) == 2 for losses in report.trial_losses)
        # Here loss = 1 - accuracy by construction.
        for mean, loss_mean in zip(report.means, report.loss_means):
            assert loss_mean == pytest.approx(1.0 - mean)

    def test_float_evaluate_fn_leaves_loss_track_empty(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=2, rng=0).run((0.0,))
        assert report.loss_means == [] and report.trial_losses == []

    def test_loss_track_survives_json_round_trip(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=2, rng=0,
                                  evaluate_fn=_metrics_eval).run((0.5,))
        assert SweepReport.from_json(report.to_json()) == report


class TestSharedCache:
    def test_second_run_answers_entirely_from_shared_cache(self, trained):
        """Identical seeded runs share digests, so run 2 evaluates nothing."""
        model, test_set = trained
        cache: dict = {}
        first = DriftSweepEngine(model, test_set, trials=3, rng=7,
                                 shared_cache=cache).run((0.0, 0.8))
        assert first.n_evaluations > 0 and len(cache) == first.n_evaluations
        second = DriftSweepEngine(model, test_set, trials=3, rng=7,
                                  shared_cache=cache).run((0.0, 0.8))
        assert second.n_evaluations == 0
        assert second.cache_hits == 6
        assert second.means == first.means

    def test_shared_cache_requires_content_addressed_keys(self, trained):
        """cache=False keys trials by position; reusing those across runs
        would silently return stale scores for different weights."""
        model, test_set = trained
        with pytest.raises(ValueError, match="shared_cache requires cache=True"):
            DriftSweepEngine(model, test_set, cache=False, shared_cache={})


class TestSweepReportSerialization:
    def test_json_round_trip(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=2, rng=0).run((0.0, 1.0),
                                                                        label="rt")
        restored = SweepReport.from_json(report.to_json())
        assert restored == report

    def test_round_trip_preserves_curve(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=2, rng=0).run((0.0, 1.0))
        curve = SweepReport.from_json(report.to_json()).curve()
        assert isinstance(curve, RobustnessCurve)
        assert curve.sigmas == report.sigmas
        assert curve.means == report.means
        assert curve.stds == report.stds


class TestLegacyWrappers:
    def test_robustness_curve_workers_identical(self, trained):
        model, test_set = trained
        serial = robustness_curve(model, test_set, sigmas=(0.0, 1.0), trials=2, rng=4)
        parallel = robustness_curve(model, test_set, sigmas=(0.0, 1.0), trials=2,
                                    rng=4, workers=2)
        assert serial.means == parallel.means
        assert serial.stds == parallel.stds

    def test_accuracy_under_drift_rejects_drift_model_instance(self, trained):
        """Regression: a DriftModel instance used to silently override σ, so a
        whole σ-sweep would measure one fixed drift level."""
        model, test_set = trained
        with pytest.raises(TypeError, match="callable mapping sigma"):
            accuracy_under_drift(model, test_set, sigma=1.0,
                                 drift_factory=LogNormalDrift(0.1))

    def test_accuracy_under_drift_factory_receives_sigma(self, trained):
        model, test_set = trained
        received = []

        def factory(sigma):
            received.append(sigma)
            return LogNormalDrift(sigma)

        accuracy_under_drift(model, test_set, sigma=0.9, trials=2, rng=0,
                             drift_factory=factory)
        assert received == [0.9]

    def test_accuracy_at_on_empty_curve_raises_clearly(self):
        curve = RobustnessCurve(label="empty-curve")
        with pytest.raises(ValueError, match="empty-curve"):
            curve.accuracy_at(0.5)
