"""Integration tests for the per-figure experiment harnesses (tiny scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import RobustnessCurve
from repro.experiments import (
    run_decision_boundary_experiment,
    run_dropout_ablation, run_depth_ablation, run_activation_ablation,
    run_classification_comparison, FIG3_PANELS,
    run_detection_comparison, run_detection_visualization,
    run_bo_vs_random_ablation,
)
from repro.experiments.fig4_detection_visualization import render_ascii_detections
from repro.utils.config import ExperimentConfig


TINY = ExperimentConfig(epochs=2, train_samples=90, test_samples=40,
                        monte_carlo_samples=1, bo_trials=2, drift_trials=1,
                        sigma_grid=(0.0, 1.0), batch_size=32, learning_rate=0.1)


class TestFig1:
    def test_boundary_experiment_structure(self):
        result = run_decision_boundary_experiment(sigmas=(0.0, 1.0), n_samples=120,
                                                  epochs=10, grid_resolution=12,
                                                  trials=2, seed=0)
        assert result["clean_accuracy"] > 0.7
        assert set(result["boundaries"]) == {0.0, 1.0}
        assert result["boundaries"][0.0].shape == (12, 12)
        # Accuracy at σ=1.0 must not exceed the clean accuracy by a margin.
        assert result["accuracies"][1.0]["mean"] <= result["accuracies"][0.0]["mean"] + 0.05

    def test_boundary_maps_are_probabilities(self):
        result = run_decision_boundary_experiment(sigmas=(0.5,), n_samples=80, epochs=5,
                                                  grid_resolution=8, trials=1, seed=1)
        boundary = result["boundaries"][0.5]
        assert boundary.min() >= 0.0 and boundary.max() <= 1.0


class TestFig2:
    def test_dropout_ablation_returns_three_curves(self):
        curves = run_dropout_ablation(TINY, seed=0)
        assert [c.label for c in curves] == ["Original Model", "DropOut", "Alpha DropOut"]
        assert all(isinstance(c, RobustnessCurve) and len(c) == 2 for c in curves)

    def test_depth_ablation_orders_depths(self):
        curves = run_depth_ablation(TINY, seed=0, depths=(3, 6))
        assert [c.label for c in curves] == ["3-Layer", "6-Layer"]

    def test_activation_ablation_runs_all_four(self):
        curves = run_activation_ablation(TINY, seed=0)
        assert len(curves) == 4


class TestFig3Classification:
    def test_panel_registry_covers_paper(self):
        assert len(FIG3_PANELS) == 9
        assert "a_mlp_mnist" in FIG3_PANELS and "i_stn_gtsrb" in FIG3_PANELS

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError):
            run_classification_comparison("z_unknown", TINY)

    def test_mlp_panel_smoke(self):
        result = run_classification_comparison("a_mlp_mnist", TINY,
                                               methods=("erm", "bayesft"), seed=0)
        labels = [curve.label for curve in result["curves"]]
        assert labels == ["ERM", "BayesFT"]
        assert result["sigmas"] == [0.0, 1.0]
        for curve in result["curves"]:
            assert all(0.0 <= m <= 1.0 for m in curve.means)
        assert set(result["summary"]) == {"ERM", "BayesFT"}


class TestFig3Detection:
    def test_detection_comparison_structure(self):
        config = ExperimentConfig(epochs=1, bo_trials=2, monte_carlo_samples=1,
                                  drift_trials=1, extra={"detector_epochs": 2})
        result = run_detection_comparison(config, seed=0, sigmas=(0.0, 0.4),
                                          n_images=12, image_size=32)
        labels = [curve["label"] for curve in result["curves"]]
        assert labels == ["ERM", "BayesFT"]
        assert len(result["best_alpha"]) >= 1
        for curve in result["curves"]:
            assert len(curve["means"]) == 2


class TestFig4:
    def test_visualization_records_boxes_per_drift_level(self):
        config = ExperimentConfig(extra={"detector_epochs": 2}, drift_trials=1)
        result = run_detection_visualization(drift_levels=(0.1, 0.4), config=config,
                                             n_visualized=2, seed=0)
        assert set(result["methods"]) == {"ERM", "BayesFT"}
        for per_level in result["methods"].values():
            assert set(per_level) == {0.1, 0.4}
            for record in per_level.values():
                assert 0.0 <= record["recall"] <= 1.0
                assert 0.0 <= record["ap"] <= 1.0

    def test_ascii_rendering(self):
        image = np.zeros((3, 16, 16))
        art = render_ascii_detections(image, [[2, 2, 8, 8]])
        assert "+" in art
        assert len(art.splitlines()) == 16


class TestSearchAblation:
    def test_bo_vs_random_returns_both_traces(self):
        result = run_bo_vs_random_ablation(TINY, seed=0)
        assert set(result) == {"bayes", "random"}
        for record in result.values():
            assert len(record["objective_trace"]) == TINY.bo_trials
            assert 0.0 <= record["auc"] <= 1.0
