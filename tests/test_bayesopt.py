"""Tests for kernels, GP regression, acquisitions and the BO loop."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayesopt import (
    ExponentialKernel, RBFKernel, Matern52Kernel, GaussianProcessRegressor,
    PosteriorMean, ExpectedImprovement, UpperConfidenceBound,
    BayesianOptimizer, RandomSearchOptimizer, GridSearchOptimizer,
)


class TestKernels:
    @pytest.mark.parametrize("kernel", [ExponentialKernel(), RBFKernel(), Matern52Kernel()])
    def test_kernel_matrix_is_symmetric_psd(self, kernel):
        x = np.random.default_rng(0).random((12, 3))
        K = kernel(x, x)
        assert np.allclose(K, K.T)
        eigenvalues = np.linalg.eigvalsh(K)
        assert eigenvalues.min() > -1e-8

    @pytest.mark.parametrize("kernel", [ExponentialKernel(), RBFKernel(), Matern52Kernel()])
    def test_self_similarity_equals_output_scale(self, kernel):
        x = np.random.default_rng(1).random((5, 2))
        assert np.allclose(np.diag(kernel(x, x)), kernel.diag(x))
        assert np.allclose(kernel.diag(x), 1.0)

    def test_exponential_kernel_decreases_with_distance(self):
        kernel = ExponentialKernel()
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[2.0]]))[0, 0]
        assert near > far

    def test_ard_lengthscales_weight_dimensions(self):
        kernel = ExponentialKernel(lengthscales=np.array([0.1, 10.0]))
        # A move along the small-lengthscale axis changes similarity much more.
        base = np.array([[0.0, 0.0]])
        along_first = kernel(base, np.array([[1.0, 0.0]]))[0, 0]
        along_second = kernel(base, np.array([[0.0, 1.0]]))[0, 0]
        assert along_first < along_second

    def test_lengthscale_dimension_mismatch_raises(self):
        kernel = ExponentialKernel(lengthscales=np.ones(3))
        with pytest.raises(ValueError):
            kernel(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            ExponentialKernel(output_scale=0.0)
        with pytest.raises(ValueError):
            Matern52Kernel(lengthscale=-1.0)


class TestGaussianProcess:
    def test_posterior_mean_interpolates_training_points(self):
        X = np.linspace(0, 1, 6)[:, None]
        y = np.sin(4 * X).ravel()
        gp = GaussianProcessRegressor(noise=1e-8).fit(X, y)
        assert np.allclose(gp.predict(X), y, atol=1e-3)

    def test_posterior_std_is_small_at_training_points(self):
        X = np.linspace(0, 1, 5)[:, None]
        y = X.ravel() ** 2
        gp = GaussianProcessRegressor(noise=1e-8).fit(X, y)
        _, std_at_train = gp.predict(X, return_std=True)
        _, std_far = gp.predict(np.array([[5.0]]), return_std=True)
        assert std_at_train.max() < std_far[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_normalization_handles_constant_targets(self):
        X = np.random.default_rng(0).random((4, 2))
        gp = GaussianProcessRegressor().fit(X, np.full(4, 3.0))
        assert np.allclose(gp.predict(X), 3.0, atol=1e-6)

    def test_duplicate_points_do_not_crash(self):
        X = np.zeros((5, 2))
        y = np.ones(5)
        gp = GaussianProcessRegressor().fit(X, y)
        assert np.isfinite(gp.predict(np.array([[0.5, 0.5]]))[0])

    def test_log_marginal_likelihood_finite(self):
        X = np.random.default_rng(0).random((8, 2))
        y = np.random.default_rng(1).random(8)
        gp = GaussianProcessRegressor().fit(X, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_log_marginal_likelihood_matches_from_scratch(self):
        """The cached O(n) value equals the textbook from-scratch formula."""
        rng = np.random.default_rng(3)
        X = rng.random((12, 2))
        y = rng.normal(size=12)
        gp = GaussianProcessRegressor().fit(X, y)
        y_scaled = (y - y.mean()) / y.std()
        K = gp.kernel(X, X)
        K[np.diag_indices_from(K)] += gp.noise + 1e-10
        expected = (-0.5 * y_scaled @ np.linalg.solve(K, y_scaled)
                    - 0.5 * np.linalg.slogdet(K)[1]
                    - 0.5 * y.size * np.log(2 * np.pi))
        assert np.allclose(gp.log_marginal_likelihood(), expected)

    def test_log_marginal_likelihood_never_rebuilds_the_kernel(self):
        """Everything lml needs is cached by fit(): no kernel call, no drift
        across repeated evaluations, and a refit refreshes the cache."""
        rng = np.random.default_rng(4)
        X, y = rng.random((9, 2)), rng.normal(size=9)
        gp = GaussianProcessRegressor().fit(X, y)
        first = gp.log_marginal_likelihood()
        gp.kernel = None  # a rebuild of K would now blow up
        assert gp.log_marginal_likelihood() == first
        gp.kernel = GaussianProcessRegressor().kernel
        refit = gp.fit(X[:5], y[:5]).log_marginal_likelihood()
        assert np.isfinite(refit) and refit != first

    @given(st.integers(min_value=3, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_posterior_variance_nonnegative(self, n_points):
        rng = np.random.default_rng(n_points)
        X = rng.random((n_points, 2))
        y = rng.random(n_points)
        gp = GaussianProcessRegressor().fit(X, y)
        _, std = gp.predict(rng.random((20, 2)), return_std=True)
        assert np.all(std >= 0)


class TestAcquisitions:
    def _fitted_gp(self):
        X = np.array([[0.0], [0.5], [1.0]])
        y = np.array([0.0, 1.0, 0.2])
        return GaussianProcessRegressor(noise=1e-6).fit(X, y)

    def test_posterior_mean_prefers_high_mean_region(self):
        gp = self._fitted_gp()
        candidates = np.array([[0.5], [0.0]])
        scores = PosteriorMean()(gp, candidates, best_observed=1.0)
        assert scores[0] > scores[1]

    def test_expected_improvement_nonnegative(self):
        gp = self._fitted_gp()
        candidates = np.linspace(0, 1, 20)[:, None]
        scores = ExpectedImprovement()(gp, candidates, best_observed=1.0)
        assert np.all(scores >= -1e-12)

    def test_ucb_increases_with_beta(self):
        gp = self._fitted_gp()
        candidate = np.array([[0.75]])
        low = UpperConfidenceBound(beta=0.1)(gp, candidate, 1.0)[0]
        high = UpperConfidenceBound(beta=5.0)(gp, candidate, 1.0)[0]
        assert high > low

    def test_invalid_acquisition_parameters(self):
        with pytest.raises(ValueError):
            ExpectedImprovement(xi=-1.0)
        with pytest.raises(ValueError):
            UpperConfidenceBound(beta=-1.0)


class TestBayesianOptimizer:
    @staticmethod
    def _objective(point):
        # Maximum value 1.0 at (0.3, 0.7).
        target = np.array([0.3, 0.7])
        return float(1.0 - np.sum((point - target) ** 2))

    def test_optimize_finds_near_optimum(self):
        optimizer = BayesianOptimizer([(0.0, 1.0), (0.0, 1.0)], n_initial=4, rng=0)
        trace = optimizer.optimize(self._objective, n_trials=25)
        assert trace.best_value > 0.9

    def test_beats_random_search_on_average(self):
        bo_best, rs_best = [], []
        for seed in range(3):
            bo = BayesianOptimizer([(0.0, 1.0), (0.0, 1.0)], n_initial=3, rng=seed)
            rs = RandomSearchOptimizer([(0.0, 1.0), (0.0, 1.0)], rng=seed)
            bo_best.append(bo.optimize(self._objective, n_trials=15).best_value)
            rs_best.append(rs.optimize(self._objective, n_trials=15).best_value)
        assert np.mean(bo_best) >= np.mean(rs_best) - 0.02

    def test_suggestions_respect_bounds(self):
        optimizer = BayesianOptimizer([(0.2, 0.4), (0.6, 0.9)], n_initial=2, rng=0)
        for _ in range(10):
            point = optimizer.suggest()
            assert 0.2 <= point[0] <= 0.4
            assert 0.6 <= point[1] <= 0.9
            optimizer.observe(point, self._objective(point))

    def test_observe_rejects_wrong_dimension(self):
        optimizer = BayesianOptimizer([(0.0, 1.0)], rng=0)
        with pytest.raises(ValueError):
            optimizer.observe(np.zeros(3), 0.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            BayesianOptimizer([(1.0, 0.0)])
        with pytest.raises(ValueError):
            BayesianOptimizer([(0.0, 1.0)], n_initial=0)

    def test_trace_running_best_is_monotone(self):
        optimizer = BayesianOptimizer([(0.0, 1.0)], n_initial=2, rng=0)
        trace = optimizer.optimize(lambda p: float(p[0]), n_trials=8)
        running = trace.running_best()
        assert np.all(np.diff(running) >= 0)
        assert len(trace) == 8


class TestNaNObjectives:
    """Regression tests mirroring the wandb bayes_search ``test_nans`` pattern:
    a diverged trial returns NaN and must never crash the loop or be chosen
    as the best trial."""

    def test_best_index_skips_nan_trials(self):
        from repro.bayesopt.optimizer import OptimizationTrace
        trace = OptimizationTrace()
        trace.append(np.array([0.1]), 0.4)
        trace.append(np.array([0.2]), float("nan"))
        trace.append(np.array([0.3]), 0.9)
        trace.append(np.array([0.4]), float("inf"))
        assert trace.best_index == 2
        assert trace.best_value == pytest.approx(0.9)
        assert trace.best_point[0] == pytest.approx(0.3)

    def test_all_nan_trace_raises_clearly(self):
        from repro.bayesopt.optimizer import OptimizationTrace
        trace = OptimizationTrace()
        trace.append(np.array([0.5]), float("nan"))
        with pytest.raises(ValueError, match="finite"):
            trace.best_index

    def test_running_best_ignores_nan(self):
        from repro.bayesopt.optimizer import OptimizationTrace
        trace = OptimizationTrace()
        for value in [0.2, float("nan"), 0.5, float("nan"), 0.3]:
            trace.append(np.array([0.0]), value)
        running = trace.running_best()
        assert np.all(np.isfinite(running[[0, 2, 4]]))
        assert running[-1] == pytest.approx(0.5)
        assert np.all(np.diff(running) >= 0)

    def test_optimize_survives_intermittent_nans(self):
        calls = []

        def flaky(point):
            calls.append(point)
            if len(calls) % 3 == 0:  # every third training run "diverges"
                return float("nan")
            return float(1.0 - (point[0] - 0.3) ** 2)

        optimizer = BayesianOptimizer([(0.0, 1.0)], n_initial=3, rng=0)
        trace = optimizer.optimize(flaky, n_trials=15)
        assert len(trace) == 15
        assert np.isfinite(trace.best_value)
        assert trace.best_value > 0.8

    def test_suggest_stays_random_until_enough_finite_points(self):
        optimizer = BayesianOptimizer([(0.0, 1.0)], n_initial=2, rng=0)
        for _ in range(5):
            optimizer.observe(optimizer.suggest(), float("nan"))
        point = optimizer.suggest()  # must not try to fit a GP on NaNs
        assert 0.0 <= point[0] <= 1.0

    def test_all_nan_objective_still_suggests_in_bounds(self):
        optimizer = BayesianOptimizer([(-10.0, 10.0)], n_initial=2, rng=1)
        trace = optimizer.optimize(lambda p: float("nan"), n_trials=6)
        assert len(trace) == 6
        assert all(-10.0 <= p[0] <= 10.0 for p in trace.points)

    def test_suggest_batch_tolerates_nan_history(self):
        """Constant-liar fantasies use the *finite* trace only; a batch
        suggested on top of NaN-polluted history stays in bounds."""
        optimizer = BayesianOptimizer([(0.0, 1.0)], n_initial=2, rng=2)
        for value in [0.3, float("nan"), 0.7, float("nan")]:
            optimizer.observe(optimizer.suggest(), value)
        batch = optimizer.suggest_batch(3)
        assert len(batch) == 3
        for point in batch:
            assert np.all(np.isfinite(point))
            assert 0.0 <= point[0] <= 1.0

    def test_suggest_batch_on_all_nan_history_stays_random(self):
        optimizer = BayesianOptimizer([(0.0, 1.0)], n_initial=2, rng=3)
        for _ in range(4):
            optimizer.observe(optimizer.suggest(), float("nan"))
        batch = optimizer.suggest_batch(2)  # no finite value to lie with
        assert all(0.0 <= point[0] <= 1.0 for point in batch)
        for point in batch:
            optimizer.observe(point, float("nan"))
        assert optimizer.pending_points == []


class TestRandomAndGridSearch:
    def test_random_search_respects_bounds(self):
        rs = RandomSearchOptimizer([(2.0, 3.0)], rng=0)
        trace = rs.optimize(lambda p: float(p[0]), n_trials=20)
        assert all(2.0 <= point[0] <= 3.0 for point in trace.points)

    def test_grid_search_covers_corners(self):
        gs = GridSearchOptimizer([(0.0, 1.0), (0.0, 1.0)], points_per_dim=3)
        trace = gs.optimize(lambda p: float(p.sum()))
        assert len(trace) == 9
        assert trace.best_value == pytest.approx(2.0)

    def test_grid_search_validation(self):
        with pytest.raises(ValueError):
            GridSearchOptimizer([(0.0, 1.0)], points_per_dim=1)
