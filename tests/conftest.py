"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticMNIST, train_test_split
from repro.utils.config import ExperimentConfig
from repro.utils.rng import seed_everything


@pytest.fixture(autouse=True)
def _seed_global_rng():
    """Every test starts from the same global seed for reproducibility."""
    seed_everything(1234)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_config():
    """An ExperimentConfig small enough for unit tests."""
    return ExperimentConfig(epochs=2, train_samples=96, test_samples=48,
                            monte_carlo_samples=2, bo_trials=3, drift_trials=2,
                            sigma_grid=(0.0, 0.5, 1.0), batch_size=32,
                            learning_rate=0.1)


@pytest.fixture(scope="session")
def mnist_split():
    """A small synthetic-MNIST train/test split shared across tests."""
    dataset = SyntheticMNIST(n_samples=240, image_size=16, rng=7)
    return train_test_split(dataset, test_fraction=0.25, rng=7)
