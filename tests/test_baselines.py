"""Tests for the ERM / ReRAM-V / AWP / FTNA baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ERM, ReRAMV, AWP, FTNA, build_codebook, build_method, available_methods
from repro.baselines.ftna import ECOCHead, replace_final_linear
from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation import accuracy
from repro.models import build_mlp, build_model
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.utils.config import ExperimentConfig


@pytest.fixture(scope="module")
def split():
    dataset = SyntheticMNIST(n_samples=200, image_size=16, rng=11)
    return train_test_split(dataset, test_fraction=0.25, rng=11)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(epochs=3, batch_size=32, learning_rate=0.1,
                            train_samples=150, test_samples=50)


class TestERM:
    def test_training_improves_accuracy(self, split, config):
        train_set, test_set = split
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        untrained = accuracy(model, test_set)
        ERM(config, rng=0).apply(model, train_set)
        assert accuracy(model, test_set) > untrained + 0.2

    def test_registry_builds_erm(self, config):
        assert isinstance(build_method("erm", config=config), ERM)


class TestReRAMV:
    def test_compensation_changes_weights(self, split, config):
        train_set, _ = split
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        reference = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        ERM(config, rng=0).apply(reference, train_set)
        ReRAMV(config, rng=0).apply(model, train_set)
        different = any(not np.array_equal(a.data, b.data)
                        for (_, a), (_, b) in zip(model.named_parameters(),
                                                  reference.named_parameters()))
        assert different

    def test_still_reaches_reasonable_clean_accuracy(self, split, config):
        train_set, test_set = split
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        ReRAMV(config, rng=0).apply(model, train_set)
        assert accuracy(model, test_set) > 0.3

    def test_extra_options_respected(self, split):
        train_set, _ = split
        config = ExperimentConfig(epochs=1, learning_rate=0.1,
                                  extra={"diagnosed_sigma": 0.0, "readjust_epochs": 0})
        model = build_mlp(256, depth=2, width=16, num_classes=10, rng=0)
        reference_state = None
        ReRAMV(config, rng=0).apply(model, train_set)
        # With diagnosed_sigma=0 and no readjustment the method reduces to ERM,
        # so it must run without error and keep finite weights.
        assert all(np.isfinite(p.data).all() for p in model.parameters())
        assert reference_state is None


class TestAWP:
    def test_training_learns_task(self, split, config):
        train_set, test_set = split
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        AWP(config, rng=0).apply(model, train_set)
        assert accuracy(model, test_set) > 0.4

    def test_perturbation_restored_after_each_step(self, split):
        """AWP must not leave the adversarial perturbation in the weights:
        train one epoch with gamma=0 and with tiny gamma; the weight scale
        should stay comparable (no runaway growth)."""
        train_set, _ = split
        config = ExperimentConfig(epochs=2, learning_rate=0.05,
                                  extra={"gamma": 0.01, "awp_warmup": 0})
        model = build_mlp(256, depth=2, width=16, num_classes=10, rng=0)
        AWP(config, rng=0).apply(model, train_set)
        norms = [np.linalg.norm(p.data) for p in model.parameters()]
        assert all(np.isfinite(n) and n < 1e3 for n in norms)

    def test_large_gamma_degrades_training(self, split):
        """The paper observes AWP can fail when the attack is too strong."""
        train_set, test_set = split
        weak = ExperimentConfig(epochs=3, learning_rate=0.1, extra={"gamma": 0.01})
        strong = ExperimentConfig(epochs=3, learning_rate=0.1, extra={"gamma": 1.5})
        model_weak = build_mlp(256, depth=2, width=32, num_classes=10, rng=0)
        model_strong = build_mlp(256, depth=2, width=32, num_classes=10, rng=0)
        AWP(weak, rng=0).apply(model_weak, train_set)
        AWP(strong, rng=0).apply(model_strong, train_set)
        assert accuracy(model_weak, test_set) >= accuracy(model_strong, test_set) - 0.05


class TestCodebook:
    def test_codebook_shape_and_binary(self):
        codebook = build_codebook(10, 16, rng=0)
        assert codebook.shape == (10, 16)
        assert set(np.unique(codebook)) <= {0.0, 1.0}

    def test_codewords_distinct(self):
        codebook = build_codebook(10, 16, rng=0)
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(codebook[i], codebook[j])

    def test_minimum_distance_enforced(self):
        codebook = build_codebook(4, 16, rng=0, min_distance=3)
        distances = [np.abs(codebook[i] - codebook[j]).sum()
                     for i in range(4) for j in range(i + 1, 4)]
        assert min(distances) >= 3

    def test_too_short_code_rejected(self):
        with pytest.raises(ValueError):
            build_codebook(10, 3)


class TestECOCHead:
    def test_forward_returns_class_scores(self):
        codebook = build_codebook(5, 8, rng=0)
        head = ECOCHead(12, codebook, rng=0)
        scores = head(Tensor(np.random.default_rng(0).standard_normal((3, 12))))
        assert scores.shape == (3, 5)
        assert np.all(scores.data <= 0)  # negative distances

    def test_replace_final_linear_swaps_head(self):
        model = build_mlp(64, depth=3, width=16, num_classes=10, rng=0)
        codebook = build_codebook(10, 8, rng=0)
        head = ECOCHead(16, codebook, rng=0)
        replace_final_linear(model, head)
        out = model(Tensor(np.zeros((2, 64))))
        assert out.shape == (2, 10)

    def test_replace_final_linear_width_mismatch(self):
        model = build_mlp(64, depth=3, width=16, num_classes=10, rng=0)
        head = ECOCHead(99, build_codebook(10, 8, rng=0), rng=0)
        with pytest.raises(ValueError):
            replace_final_linear(model, head)


class TestFTNA:
    def test_apply_trains_and_decodes(self, split):
        train_set, test_set = split
        # The per-bit BCE objective converges more slowly than softmax
        # cross-entropy, so FTNA gets a larger epoch/learning-rate budget here.
        ftna_config = ExperimentConfig(epochs=20, batch_size=32, learning_rate=0.2)
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        FTNA(num_classes=10, config=ftna_config, rng=0).apply(model, train_set)
        assert accuracy(model, test_set) > 0.5

    def test_final_layer_is_ecoc_head(self, split, config):
        train_set, _ = split
        model = build_model("mlp", num_classes=10, in_channels=1, image_size=16, rng=0)
        FTNA(num_classes=10, config=config, rng=0).apply(model, train_set)
        heads = [m for _, m in model.named_modules() if isinstance(m, ECOCHead)]
        assert len(heads) == 1

    def test_registry_names(self, config):
        assert set(available_methods()) == {"erm", "reram-v", "awp", "ftna"}
        assert isinstance(build_method("ftna", num_classes=10, config=config), FTNA)
        assert isinstance(build_method("reram_v", config=config), ReRAMV)
        assert isinstance(build_method("awp", config=config), AWP)
        with pytest.raises(ValueError):
            build_method("dropout-only")
