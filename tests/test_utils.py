"""Tests for rng management, serialization and experiment configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_mlp
from repro.utils import get_rng, seed_everything, spawn_rng, save_state, load_state, ExperimentConfig


class TestRng:
    def test_seed_everything_is_reproducible(self):
        seed_everything(7)
        first = get_rng().random(4)
        seed_everything(7)
        second = get_rng().random(4)
        assert np.array_equal(first, second)

    def test_get_rng_from_int(self):
        assert np.array_equal(get_rng(3).random(3), np.random.default_rng(3).random(3))

    def test_get_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert get_rng(generator) is generator

    def test_spawn_rng_is_independent(self):
        parent = np.random.default_rng(0)
        child = spawn_rng(parent)
        assert not np.array_equal(parent.random(3), child.random(3))


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        model = build_mlp(16, depth=3, width=8, num_classes=4, rng=0)
        path = tmp_path / "model.npz"
        save_state(model.state_dict(), path)
        restored = load_state(path)
        for key, value in model.state_dict().items():
            assert np.array_equal(restored[key], value)

    def test_load_adds_npz_suffix_if_missing(self, tmp_path):
        state = {"weights": np.arange(5.0)}
        save_state(state, tmp_path / "checkpoint")
        restored = load_state(tmp_path / "checkpoint")
        assert np.array_equal(restored["weights"], np.arange(5.0))

    def test_loaded_state_restores_model(self, tmp_path):
        model = build_mlp(16, depth=2, width=8, num_classes=4, rng=0)
        save_state(model.state_dict(), tmp_path / "m.npz")
        clone = build_mlp(16, depth=2, width=8, num_classes=4, rng=99)
        clone.load_state_dict(load_state(tmp_path / "m.npz"))
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            assert np.array_equal(a.data, b.data)


class TestExperimentConfig:
    def test_defaults_are_sane(self):
        config = ExperimentConfig()
        assert config.epochs > 0
        assert 0.0 < config.learning_rate < 1.0
        assert len(config.sigma_grid) >= 2

    def test_fast_config_is_smaller(self):
        fast = ExperimentConfig.fast()
        default = ExperimentConfig()
        assert fast.train_samples < default.train_samples
        assert fast.epochs <= default.epochs

    def test_to_dict_round_trips_fields(self):
        config = ExperimentConfig(epochs=7, extra={"gamma": 0.5})
        as_dict = config.to_dict()
        assert as_dict["epochs"] == 7
        assert as_dict["extra"]["gamma"] == 0.5

    def test_from_dict_is_symmetric_with_to_dict(self):
        config = ExperimentConfig(epochs=7, sigma_grid=(0.0, 0.4, 1.1),
                                  extra={"gamma": 0.5})
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_from_dict_survives_json(self):
        """JSON turns the sigma_grid tuple into a list; from_dict restores it."""
        import json

        config = ExperimentConfig.fast()
        restored = ExperimentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config
        assert isinstance(restored.sigma_grid, tuple)

    def test_from_dict_accepts_partial_dicts(self):
        config = ExperimentConfig.from_dict({"epochs": 3})
        assert config.epochs == 3
        assert config.batch_size == ExperimentConfig().batch_size

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ExperimentConfig fields"):
            ExperimentConfig.from_dict({"epochs": 3, "epocks": 5})
