"""Tests for fault models, the injector and per-layer policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.fault import (
    LogNormalDrift, GaussianDrift, UniformDrift, StuckAtFault, BitFlipFault,
    CompositeFault, drift_array, FaultInjector, inject_faults, fault_injection,
    UniformPolicy, PerLayerSigmaPolicy,
)
from repro.models import build_mlp


class TestLogNormalDrift:
    def test_zero_sigma_is_identity(self):
        weights = np.random.default_rng(0).standard_normal((5, 5))
        drifted = LogNormalDrift(0.0)(weights, rng=0)
        assert np.array_equal(drifted, weights)
        assert drifted is not weights  # must be a copy

    def test_sign_is_preserved(self):
        weights = np.array([-1.0, 2.0, -3.0, 4.0])
        drifted = LogNormalDrift(1.0)(weights, rng=0)
        assert np.all(np.sign(drifted) == np.sign(weights))

    def test_multiplicative_factor_statistics(self):
        sigma = 0.5
        weights = np.ones(200_000)
        drifted = LogNormalDrift(sigma)(weights, rng=0)
        log_factors = np.log(drifted)
        assert log_factors.mean() == pytest.approx(0.0, abs=0.01)
        assert log_factors.std() == pytest.approx(sigma, rel=0.02)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormalDrift(-0.1)

    def test_expected_relative_error_monotone_in_sigma(self):
        errors = [LogNormalDrift(s).expected_relative_error() for s in (0.0, 0.3, 0.9, 1.5)]
        assert errors[0] == 0.0
        assert all(b > a for a, b in zip(errors, errors[1:]))

    @given(st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_zero_weights_stay_zero(self, sigma):
        drifted = LogNormalDrift(sigma)(np.zeros(16), rng=1)
        assert np.all(drifted == 0.0)

    def test_drift_array_helper(self):
        weights = np.ones(10)
        assert not np.array_equal(drift_array(weights, 0.8, rng=0), weights)


class TestOtherDriftModels:
    def test_gaussian_drift_zero_sigma_identity(self):
        weights = np.ones(8)
        assert np.array_equal(GaussianDrift(0.0)(weights, rng=0), weights)

    def test_gaussian_drift_relative_scales_with_magnitude(self):
        rng_seed = 3
        small = GaussianDrift(0.5)(np.full(50_000, 0.1), rng=rng_seed)
        large = GaussianDrift(0.5)(np.full(50_000, 10.0), rng=rng_seed)
        assert np.abs(large - 10.0).mean() > np.abs(small - 0.1).mean() * 50

    def test_uniform_drift_bounded(self):
        weights = np.ones(10_000)
        drifted = UniformDrift(0.2)(weights, rng=0)
        assert drifted.min() >= 0.8 - 1e-12
        assert drifted.max() <= 1.2 + 1e-12

    def test_stuck_at_fraction(self):
        weights = np.ones(100_000)
        drifted = StuckAtFault(0.05, stuck_value=0.0)(weights, rng=0)
        assert (drifted == 0.0).mean() == pytest.approx(0.05, rel=0.1)

    def test_stuck_at_probability_validation(self):
        with pytest.raises(ValueError):
            StuckAtFault(1.5)

    def test_bitflip_zero_probability_roundtrip(self):
        weights = np.linspace(-1, 1, 17)
        drifted = BitFlipFault(0.0, bits=8)(weights, rng=0)
        assert np.array_equal(drifted, weights)

    def test_bitflip_perturbs_weights(self):
        weights = np.linspace(-1, 1, 1000)
        drifted = BitFlipFault(0.05, bits=8)(weights, rng=0)
        assert not np.array_equal(drifted, weights)
        assert np.abs(drifted).max() <= np.abs(weights).max() * 2 + 1e-9

    def test_bitflip_bits_validation(self):
        with pytest.raises(ValueError):
            BitFlipFault(0.1, bits=1)

    def test_composite_applies_in_sequence(self):
        weights = np.ones(1000)
        composite = CompositeFault(LogNormalDrift(0.3), StuckAtFault(0.1))
        drifted = composite(weights, rng=0)
        assert (drifted == 0.0).mean() == pytest.approx(0.1, rel=0.3)
        assert not np.array_equal(drifted[drifted != 0], weights[drifted != 0])

    def test_composite_requires_models(self):
        with pytest.raises(ValueError):
            CompositeFault()


class TestSampleBatchDeterminism:
    """The non-drift fault models honour the batched-RNG stream contract."""

    MODELS = [StuckAtFault(0.3), BitFlipFault(0.05, bits=8),
              CompositeFault(LogNormalDrift(0.4), StuckAtFault(0.15))]

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_seeded_batches_are_reproducible(self, model):
        weights = np.random.default_rng(5).normal(size=(6, 4))
        first = model.sample_batch(weights, 4, rng=np.random.default_rng(17))
        second = model.sample_batch(weights, 4, rng=np.random.default_rng(17))
        np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_split_draws_reproduce_the_single_batch(self, model):
        """sample_batch(w, a) then (w, b) on one stream == sample_batch(w, a+b)
        — the contract chunked pre-drawing relies on."""
        weights = np.random.default_rng(5).normal(size=(6, 4))
        full = model.sample_batch(weights, 5, rng=np.random.default_rng(23))
        stream = np.random.default_rng(23)
        split = np.concatenate([model.sample_batch(weights, 2, rng=stream),
                                model.sample_batch(weights, 3, rng=stream)])
        np.testing.assert_array_equal(split, full)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_input_weights_never_mutated(self, model):
        weights = np.random.default_rng(5).normal(size=(6, 4))
        before = weights.copy()
        model.sample_batch(weights, 3, rng=0)
        np.testing.assert_array_equal(weights, before)

    def test_zero_severity_models_declare_deterministic(self):
        assert StuckAtFault(0.0).is_deterministic()
        assert BitFlipFault(0.0).is_deterministic()
        assert CompositeFault(LogNormalDrift(0.0), StuckAtFault(0.0)).is_deterministic()
        assert not CompositeFault(LogNormalDrift(0.0), StuckAtFault(0.1)).is_deterministic()


class TestFaultInjector:
    def _small_model(self):
        return build_mlp(16, depth=2, width=8, num_classes=3, rng=0)

    def test_inject_changes_parameters(self):
        model = self._small_model()
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        injector = FaultInjector(model, LogNormalDrift(0.5), rng=0)
        report = injector.inject()
        changed = any(not np.array_equal(before[name], p.data)
                      for name, p in model.named_parameters())
        assert changed
        assert all(value >= 0 for value in report.values())

    def test_restore_returns_original_weights(self):
        model = self._small_model()
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        injector = FaultInjector(model, LogNormalDrift(0.8), rng=0)
        injector.inject()
        injector.restore()
        for name, parameter in model.named_parameters():
            assert np.array_equal(before[name], parameter.data)

    def test_skip_substrings(self):
        model = self._small_model()
        bias_before = {name: p.data.copy() for name, p in model.named_parameters()
                       if "bias" in name}
        injector = FaultInjector(model, LogNormalDrift(1.0), skip=("bias",), rng=0)
        injector.inject()
        for name, parameter in model.named_parameters():
            if "bias" in name:
                assert np.array_equal(bias_before[name], parameter.data)

    def test_inject_faults_helper_returns_injector(self):
        model = self._small_model()
        injector = inject_faults(model, sigma=0.4, rng=0)
        injector.restore()

    def test_context_manager_restores_on_exit(self):
        model = self._small_model()
        before = model.state_dict()
        with fault_injection(model, 0.9, rng=0):
            drifted_state = model.state_dict()
        after = model.state_dict()
        weight_keys = [k for k in before if k.endswith("weight")]
        assert any(not np.array_equal(before[k], drifted_state[k]) for k in weight_keys)
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_context_manager_restores_on_exception(self):
        model = self._small_model()
        before = model.state_dict()
        with pytest.raises(RuntimeError):
            with fault_injection(model, 0.9, rng=0):
                raise RuntimeError("boom")
        for key, value in model.state_dict().items():
            assert np.array_equal(before[key], value)

    def test_report_magnitude_grows_with_sigma(self):
        small_model = self._small_model()
        large_model = self._small_model()
        small = np.mean(list(FaultInjector(small_model, LogNormalDrift(0.1), rng=0).inject().values()))
        large = np.mean(list(FaultInjector(large_model, LogNormalDrift(1.0), rng=0).inject().values()))
        assert large > small


class TestPolicies:
    def test_uniform_policy_returns_same_model(self):
        policy = UniformPolicy(LogNormalDrift(0.5))
        assert policy.model_for("anything") is policy.model_for("layer.weight")

    def test_per_layer_policy_pattern_matching(self):
        policy = PerLayerSigmaPolicy({r"head": 1.0, r"linear0": 0.1}, default_sigma=None)
        assert policy.model_for("body.head.weight").sigma == 1.0
        assert policy.model_for("body.linear0.weight").sigma == 0.1
        assert policy.model_for("body.linear1.weight") is None

    def test_per_layer_policy_default(self):
        policy = PerLayerSigmaPolicy({r"head": 1.0}, default_sigma=0.2)
        assert policy.model_for("other.weight").sigma == 0.2

    def test_injector_with_policy_skips_unmatched(self):
        model = build_mlp(16, depth=3, width=8, num_classes=3, rng=0)
        policy = PerLayerSigmaPolicy({r"head": 2.0}, default_sigma=None)
        before = model.state_dict()
        injector = FaultInjector(model, policy, rng=0)
        injector.inject()
        for name, parameter in model.named_parameters():
            if "head" in name and "weight" in name:
                # Biases start at exactly zero, which multiplicative drift
                # cannot change, so only the weight matrix is checked.
                assert not np.array_equal(before[name], parameter.data)
            elif "head" not in name:
                assert np.array_equal(before[name], parameter.data)
