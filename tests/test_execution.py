"""Tests for the pluggable execution layer (`repro.execution`).

The load-bearing guarantee is backend equivalence: a seeded sweep produces a
byte-identical canonical report whether trials are evaluated in-process,
in a pickled-task worker pool, or through shared-memory weight shipping —
for any worker count and any chunk size, σ=0 cache fast path included.
On top of that: registry resolution rules, shipping accounting, segment
hygiene, the serial-fallback contract, and the execution-layer users
(`deploy_on_reram` program-and-verify, cell fan-out in `run_specs`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticMNIST, train_test_split
from repro.evaluation import DriftSweepEngine
from repro.execution import (
    EvalContext, ExecutionBackend, ProcessPoolBackend, SerialBackend,
    SharedMemoryBackend, available_backends, resolve_backend,
)
from repro.models import build_mlp
from repro.training import train_classifier


@pytest.fixture(scope="module")
def trained():
    dataset = SyntheticMNIST(n_samples=200, image_size=16, rng=13)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, rng=13)
    model = build_mlp(256, depth=3, width=32, num_classes=10, rng=13)
    train_classifier(model, train_set, epochs=3, learning_rate=0.1, rng=13)
    return model, test_set


class TestRegistry:
    def test_issue_backends_registered(self):
        assert {"serial", "process", "shared_memory"} <= set(available_backends())

    def test_resolve_from_workers_matches_historical_behaviour(self):
        assert isinstance(resolve_backend(None, workers=0), SerialBackend)
        assert isinstance(resolve_backend(None, workers=1), SerialBackend)
        assert isinstance(resolve_backend(None, workers=2), ProcessPoolBackend)

    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("shared_memory"), SharedMemoryBackend)
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_named_pool_backend_defaults_to_two_workers(self):
        assert resolve_backend("process", workers=0).workers == 2
        assert resolve_backend("process", workers=4).workers == 4

    def test_unknown_backend_rejected_with_available_list(self):
        with pytest.raises(ValueError, match="shared_memory"):
            resolve_backend("gpu")

    def test_engine_rejects_unknown_backend_at_construction(self, trained):
        model, test_set = trained
        with pytest.raises(ValueError, match="unknown execution backend"):
            DriftSweepEngine(model, test_set, backend="warp-drive")

    def test_pool_backend_needs_two_workers(self):
        with pytest.raises(ValueError, match="at least 2 workers"):
            ProcessPoolBackend(workers=1)


class TestBackendEquivalence:
    """Seeded sweeps are byte-identical across every backend/schedule."""

    SIGMAS = (0.0, 0.6, 1.2)  # σ=0 exercises the deterministic-drift fast path

    def _canonical(self, trained, **kwargs) -> str:
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=3, rng=99,
                                  **kwargs).run(self.SIGMAS, label="equiv")
        return report.to_json(canonical=True)

    @pytest.mark.parametrize("kwargs", [
        dict(backend="serial"),
        dict(workers=2),                       # historical selector
        dict(backend="process", workers=2),
        dict(backend="process", workers=3),
        dict(backend="shared_memory", workers=2),
        dict(backend="shared_memory", workers=3),
        dict(backend="process", workers=2, max_chunk_trials=2),
        dict(backend="shared_memory", workers=2, max_chunk_trials=1),
        dict(backend="shared_memory", workers=2, max_chunk_trials=2),
    ], ids=lambda kw: "-".join(f"{k}={v}" for k, v in kw.items()))
    def test_byte_identical_canonical_reports(self, trained, kwargs):
        assert self._canonical(trained, **kwargs) == self._canonical(trained)

    def test_sigma_zero_fast_path_survives_every_backend(self, trained):
        model, test_set = trained
        for backend in ("serial", "process", "shared_memory"):
            report = DriftSweepEngine(model, test_set, trials=4, rng=5,
                                      workers=2, backend=backend).run((0.0, 0.9))
            assert report.cache_hits >= 3          # σ=0 collapses to one eval
            assert report.stds[0] == 0.0
            assert report.n_evaluations == 8 - report.cache_hits

    def test_backend_instance_can_be_passed_and_reused(self, trained):
        """One backend instance serves several sweeps (reopened each run)."""
        model, test_set = trained
        backend = SharedMemoryBackend(workers=2)
        first = DriftSweepEngine(model, test_set, trials=2, rng=7,
                                 backend=backend).run((0.0, 0.8))
        second = DriftSweepEngine(model, test_set, trials=2, rng=7,
                                  backend=backend).run((0.0, 0.8))
        assert first.to_json(canonical=True) == second.to_json(canonical=True)
        assert second.backend == "shared_memory"


class TestShippingAccounting:
    def test_serial_ships_nothing(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=3, rng=1).run((0.8,))
        assert report.backend == "serial"
        assert report.tasks_shipped == 0 and report.bytes_shipped == 0

    def test_shared_memory_ships_a_fraction_of_pickled_pool(self, trained):
        model, test_set = trained

        def run(backend):
            return DriftSweepEngine(model, test_set, trials=3, rng=1,
                                    workers=2, backend=backend).run((0.8, 1.2))

        pickled, shared = run("process"), run("shared_memory")
        assert pickled.backend == "process" and shared.backend == "shared_memory"
        assert pickled.tasks_shipped == shared.tasks_shipped > 0
        # The whole point: offset tables instead of weight arrays.
        assert shared.bytes_shipped * 10 <= pickled.bytes_shipped

    def test_volatile_fields_exclude_shipping_from_canonical(self, trained):
        model, test_set = trained
        report = DriftSweepEngine(model, test_set, trials=2, rng=1,
                                  workers=2, backend="shared_memory").run((0.7,))
        canonical = report.canonical_dict()
        for field in ("tasks_shipped", "bytes_shipped", "backend", "workers"):
            assert field not in canonical


class TestSegmentHygiene:
    def test_no_segments_left_after_sweep(self, trained):
        model, test_set = trained
        backend = SharedMemoryBackend(workers=2)
        DriftSweepEngine(model, test_set, trials=3, rng=3,
                         backend=backend).run((0.5, 1.0))
        assert backend._segments == []

    def test_close_releases_stray_segments(self, trained):
        model, test_set = trained
        backend = SharedMemoryBackend(workers=2)
        backend.open(EvalContext(model=model, data=test_set,
                                 evaluate_fn=lambda m, d: 0.0))
        segment, _ = backend._publish({"a": {"w": np.ones((2, 2))},
                                       "b": {"w": np.zeros((2, 2))}})
        name = segment.name
        backend.close()
        assert backend._segments == []
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class _ExplodingPoolBackend(ExecutionBackend):
    """Out-of-process backend whose shipping always fails."""

    name = "exploding"
    out_of_process = True

    def run_trials(self, pending, apply_trial):
        raise OSError("no forks left")


class _ExplodingSerialBackend(_ExplodingPoolBackend):
    name = "exploding-serial"
    out_of_process = False


class TestFallback:
    def test_broken_pool_degrades_to_serial_with_identical_results(self, trained):
        model, test_set = trained
        reference = DriftSweepEngine(model, test_set, trials=3, rng=17).run((0.0, 0.9))
        with pytest.warns(RuntimeWarning, match="fell back to serial"):
            degraded = DriftSweepEngine(model, test_set, trials=3, rng=17,
                                        backend=_ExplodingPoolBackend()).run((0.0, 0.9))
        assert degraded.fallback_reason.startswith("OSError")
        assert degraded.backend == "serial"
        assert degraded.to_json(canonical=True) == reference.to_json(canonical=True)

    def test_in_process_backend_errors_propagate(self, trained):
        model, test_set = trained
        engine = DriftSweepEngine(model, test_set, trials=2, rng=0,
                                  backend=_ExplodingSerialBackend())
        with pytest.raises(OSError, match="no forks left"):
            engine.run((0.5,))

    def test_weights_restored_after_fallback_sweep(self, trained):
        model, test_set = trained
        before = model.state_dict()
        with pytest.warns(RuntimeWarning):
            DriftSweepEngine(model, test_set, trials=2, rng=0,
                             backend=_ExplodingPoolBackend()).run((1.2,))
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestObjectiveBackend:
    def test_bo_objective_identical_through_shared_memory(self, trained):
        from repro.core.objective import DriftMarginalizedObjective

        model, test_set = trained
        values = {}
        for backend in (None, "shared_memory"):
            objective = DriftMarginalizedObjective(
                test_set, sigma=0.7, monte_carlo_samples=3, rng=11,
                sweep_workers=2 if backend else 0, sweep_backend=backend)
            values[backend] = objective.evaluate_with_clean(model)[:2]
        assert values[None] == values["shared_memory"]


class TestDeployProgramAndVerify:
    def _model(self):
        return build_mlp(64, depth=2, width=12, num_classes=4, rng=0)

    def _data(self):
        dataset = SyntheticMNIST(n_samples=40, image_size=8, rng=2)
        _, test_set = train_test_split(dataset, test_fraction=0.5, rng=2)
        return test_set

    def test_multi_trial_deploy_needs_validation_data(self):
        from repro.reram import deploy_on_reram

        with pytest.raises(ValueError, match="validate_data"):
            deploy_on_reram(self._model(), trials=3)

    def test_best_candidate_is_programmed(self):
        from repro.reram import deploy_on_reram

        report = deploy_on_reram(self._model(), rng=4, trials=3,
                                 validate_data=self._data())
        assert report.trials == 3
        assert len(report.candidate_scores) == 3
        assert report.selected_trial == int(np.argmax(report.candidate_scores))
        assert report.validation_score == max(report.candidate_scores)
        assert report.mean_relative_error() > 0  # the deployment really perturbs
        restored = type(report).from_json(report.to_json())
        assert restored == report

    def test_candidate_selection_identical_across_backends(self):
        from repro.reram import deploy_on_reram

        results = []
        for backend in ("serial", "shared_memory"):
            model = self._model()
            report = deploy_on_reram(model, rng=9, trials=3,
                                     validate_data=self._data(),
                                     backend=backend)
            results.append((report.candidate_scores, report.selected_trial,
                            {k: v.tolist() for k, v in model.state_dict().items()}))
        assert results[0] == results[1]

    def test_single_trial_deploy_unchanged(self):
        from repro.reram import deploy_on_reram

        report = deploy_on_reram(self._model(), rng=1)
        assert report.trials == 1 and report.selected_trial == 0
        assert report.candidate_scores == [] and report.validation_score is None
